package core

import (
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// The regression suite for the networked syscall path: every test runs
// against the monolithic kernel and the sharded kernel, because the
// socket table takes a different route in each (single combiner vs.
// owner-shard op plus the port namespace on process shard 0).

func forEachKernelMode(t *testing.T, f func(t *testing.T, shards int)) {
	t.Run("monolithic", func(t *testing.T) { f(t, 0) })
	t.Run("sharded", func(t *testing.T) { f(t, 2) })
}

func bootMode(t *testing.T, shards int) (*System, *sys.Sys) {
	t.Helper()
	s, err := Boot(Config{Cores: 4, MemBytes: 256 << 20, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		t.Fatal(err)
	}
	return s, initSys
}

// A socket id is a per-process capability: another process using the
// same numeric id must get EBADF from every operation, not a handle on
// the owner's socket.
func TestSockCrossPIDIsolation(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		bound := make(chan sys.SockID, 1)
		release := make(chan struct{})
		_, err := s.Run(initSys, "owner", func(p *Process) int {
			id, e := p.Sys.SockBind(6200)
			if e != sys.EOK {
				bound <- 0
				return 1
			}
			bound <- id
			<-release
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		id := <-bound
		if id == 0 {
			t.Fatal("owner bind failed")
		}
		defer close(release)
		probe := make(chan error, 1)
		_, err = s.Run(initSys, "intruder", func(p *Process) int {
			if _, e := p.Sys.SockSend(id, 0xA, 1, []byte("x")); e != sys.EBADF {
				probe <- fmt.Errorf("send on foreign id: %v", e)
				return 1
			}
			if _, _, _, e := p.Sys.SockRecv(id); e != sys.EBADF {
				probe <- fmt.Errorf("recv on foreign id: %v", e)
				return 1
			}
			if e := p.Sys.SockClose(id); e != sys.EBADF {
				probe <- fmt.Errorf("close on foreign id: %v", e)
				return 1
			}
			probe <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-probe; err != nil {
			t.Fatal(err)
		}
	})
}

// Exit must tear down the process's sockets in both halves — the
// replicated table (including the sharded port-namespace reservation on
// shard 0) and the device stack — leaving the ports bindable.
func TestSockExitReleasesPorts(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		setup := make(chan error, 1)
		_, err := s.Run(initSys, "leaver", func(p *Process) int {
			for _, port := range []sys.Port{6300, 6301, 0} {
				if _, e := p.Sys.SockBind(port); e != sys.EOK {
					setup <- fmt.Errorf("bind %d: %v", port, e)
					return 1
				}
			}
			setup <- nil
			return 0 // exit without closing anything
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-setup; err != nil {
			t.Fatal(err)
		}
		s.WaitAll()
		if _, e := initSys.Wait(); e != sys.EOK {
			t.Fatalf("wait: %v", e)
		}
		rebind := make(chan error, 1)
		_, err = s.Run(initSys, "rebinder", func(p *Process) int {
			for _, port := range []sys.Port{6300, 6301} {
				id, e := p.Sys.SockBind(port)
				if e != sys.EOK {
					rebind <- fmt.Errorf("rebind %d after exit: %v", port, e)
					return 1
				}
				if e := p.Sys.SockClose(id); e != sys.EOK {
					rebind <- fmt.Errorf("close: %v", e)
					return 1
				}
			}
			rebind <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-rebind; err != nil {
			t.Fatal(err)
		}
		s.WaitAll()
	})
}

// Close is terminal and exact: receive after close fails EBADF, a
// second close fails EBADF without touching a successor socket that
// reused the port, and a port held by one process refuses a second
// binder with EADDRINUSE until released.
func TestSockCloseSemantics(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		done := make(chan error, 1)
		_, err := s.Run(initSys, "closer", func(p *Process) int {
			fail := func(f string, a ...any) int {
				done <- fmt.Errorf(f, a...)
				return 1
			}
			id, e := p.Sys.SockBind(6400)
			if e != sys.EOK {
				return fail("bind: %v", e)
			}
			if _, e := p.Sys.SockBind(6400); e != sys.EADDRINUSE {
				return fail("second bind of held port: got %v, want EADDRINUSE", e)
			}
			if e := p.Sys.SockClose(id); e != sys.EOK {
				return fail("close: %v", e)
			}
			if _, _, _, e := p.Sys.SockRecv(id); e != sys.EBADF {
				return fail("recv after close: got %v, want EBADF", e)
			}
			// The port is free again; a double close of the old id must
			// not tear down the successor.
			id2, e := p.Sys.SockBind(6400)
			if e != sys.EOK {
				return fail("rebind after close: %v", e)
			}
			if e := p.Sys.SockClose(id); e != sys.EBADF {
				return fail("double close: got %v, want EBADF", e)
			}
			if _, _, _, e := p.Sys.SockRecv(id2); e != sys.EAGAIN {
				return fail("successor socket damaged by double close: %v", e)
			}
			if _, e := p.Sys.SockSend(id2, 0xA, 1, make([]byte, netstack.MaxPayload+1)); e != sys.EINVAL {
				return fail("oversized send: got %v, want EINVAL", e)
			}
			done <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		s.WaitAll()
	})
}

// A receiver parked on the delivery doorbell must be woken by teardown:
// SIGKILL closes the victim's sockets, the close rings the doorbell,
// and the parked receive completes with EBADF instead of sleeping
// forever.
func TestSockBlockingRecvWokenByKill(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		started := make(chan proc.PID, 1)
		parked := make(chan sys.Errno, 1)
		_, err := s.Run(initSys, "victim", func(p *Process) int {
			sock, e := p.Sys.SockBind(6500)
			if e != sys.EOK {
				started <- 0
				return 1
			}
			started <- p.PID
			_, _, _, e = p.Sys.SockRecvBlocking(sock)
			parked <- e
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		pid := <-started
		if pid == 0 {
			t.Fatal("victim setup failed")
		}
		if e := initSys.Kill(pid, proc.SIGKILL); e != sys.EOK {
			t.Fatal(e)
		}
		if e := <-parked; e != sys.EBADF {
			t.Fatalf("parked recv woke with %v, want EBADF", e)
		}
		s.WaitAll()
		if _, err := s.Net.Bind(6500); err != nil {
			t.Fatalf("port not released after kill: %v", err)
		}
	})
}

// Socket ops ride the submission ring alongside file ops: their table
// halves drain through the batch's combiner round and the completions
// carry the documented shapes (bind → id, send → accepted count,
// recv → packed source or EAGAIN, close → released port, double close
// → EBADF).
func TestSockBatchOps(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		done := make(chan error, 1)
		_, err := s.Run(initSys, "batcher", func(p *Process) int {
			fail := func(f string, a ...any) int {
				done <- fmt.Errorf(f, a...)
				return 1
			}
			id, e := p.Sys.SockBind(6600)
			if e != sys.EOK {
				return fail("scalar bind: %v", e)
			}
			payload := []byte("ring-datagram")
			comps, errno := p.Sys.SubmitWait([]sys.Op{
				sys.OpSockSend(id, 0xBEEF, 7, payload),
				sys.OpSockRecv(id),
				sys.OpSockBind(6601, 8),
				sys.OpSockClose(id),
				sys.OpSockClose(id), // double close inside the batch
			})
			if errno != sys.EOK {
				return fail("batch errno: %v", errno)
			}
			if comps[0].Errno != sys.EOK || comps[0].Val != uint64(len(payload)) {
				return fail("batch send: errno %v val %d, want %d bytes accepted", comps[0].Errno, comps[0].Val, len(payload))
			}
			if comps[1].Errno != sys.EAGAIN {
				return fail("batch recv on empty queue: %v, want EAGAIN", comps[1].Errno)
			}
			if comps[2].Errno != sys.EOK || comps[2].Val == 0 {
				return fail("batch bind: errno %v id %d", comps[2].Errno, comps[2].Val)
			}
			if comps[3].Errno != sys.EOK || comps[3].Val != 6600 {
				return fail("batch close: errno %v port %d", comps[3].Errno, comps[3].Val)
			}
			if comps[4].Errno != sys.EBADF {
				return fail("batch double close: %v, want EBADF", comps[4].Errno)
			}
			if e := p.Sys.SockClose(sys.SockID(comps[2].Val)); e != sys.EOK {
				return fail("closing batch-bound socket: %v", e)
			}
			done <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		s.WaitAll()
	})
}

// Bind/send/recv/close race from many processes over a handful of
// contended ports; run under -race in CI. Whatever interleaving wins,
// every success must be exclusive (one holder per port) and the ports
// must all be free at the end.
func TestSockBindCloseStress(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		s, initSys := bootMode(t, shards)
		const workers = 6
		const iters = 40
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			w := w
			_, err := s.Run(initSys, fmt.Sprintf("stress%d", w), func(p *Process) int {
				for i := 0; i < iters; i++ {
					port := sys.Port(6700 + (w+i)%4)
					id, e := p.Sys.SockBind(port)
					if e == sys.EADDRINUSE {
						continue // another worker holds it
					}
					if e != sys.EOK {
						errs <- fmt.Errorf("worker %d: bind %d: %v", w, port, e)
						return 1
					}
					if _, e := p.Sys.SockSend(id, 0xF00, 1, []byte{byte(i)}); e != sys.EOK {
						errs <- fmt.Errorf("worker %d: send: %v", w, e)
						return 1
					}
					if _, _, _, e := p.Sys.SockRecv(id); e != sys.EAGAIN && e != sys.EOK {
						errs <- fmt.Errorf("worker %d: recv: %v", w, e)
						return 1
					}
					if e := p.Sys.SockClose(id); e != sys.EOK {
						errs <- fmt.Errorf("worker %d: close: %v", w, e)
						return 1
					}
					if e := p.Sys.SockClose(id); e != sys.EBADF {
						errs <- fmt.Errorf("worker %d: double close: %v", w, e)
						return 1
					}
				}
				errs <- nil
				return 0
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		s.WaitAll()
		// Every contended port must be free again.
		for port := uint16(6700); port < 6704; port++ {
			sock, err := s.Net.Bind(port)
			if err != nil {
				t.Fatalf("port %d leaked: %v", port, err)
			}
			_ = sock.Close()
		}
	})
}

// The cross-machine echo of TestNetworkBetweenSystems, but with both
// machines running sharded kernels: the table ops route through the
// owner shard and the namespace on shard 0 while datagrams cross the
// virtual wire and wake doorbell-parked receivers.
func TestSockShardedCrossMachineEcho(t *testing.T) {
	wire := netstack.NewNetwork()
	sa, err := Boot(Config{Cores: 4, MemBytes: 256 << 20, NICAddr: 0xA, Network: wire, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Boot(Config{Cores: 4, MemBytes: 256 << 20, NICAddr: 0xB, Network: wire, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	initA, err := sa.Init()
	if err != nil {
		t.Fatal(err)
	}
	initB, err := sb.Init()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 10
	ready := make(chan sys.SockID, 1)
	serverErr := make(chan error, 1)
	_, err = sb.Run(initB, "echo", func(p *Process) int {
		sock, e := p.Sys.SockBind(7100)
		if e != sys.EOK {
			ready <- 0
			serverErr <- fmt.Errorf("bind: %v", e)
			return 1
		}
		ready <- sock
		for i := 0; i < rounds; i++ {
			payload, from, port, e := p.Sys.SockRecvBlocking(sock)
			if e != sys.EOK {
				serverErr <- fmt.Errorf("recv %d: %v", i, e)
				return 1
			}
			if _, e := p.Sys.SockSend(sock, from, port, payload); e != sys.EOK {
				serverErr <- fmt.Errorf("send %d: %v", i, e)
				return 1
			}
		}
		serverErr <- nil
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if <-ready == 0 {
		t.Fatal(<-serverErr)
	}
	clientErr := make(chan error, 1)
	_, err = sa.Run(initA, "client", func(p *Process) int {
		sock, e := p.Sys.SockBind(0)
		if e != sys.EOK {
			clientErr <- fmt.Errorf("client bind: %v", e)
			return 1
		}
		for i := 0; i < rounds; i++ {
			msg := []byte(fmt.Sprintf("sharded-round-%d", i))
			if _, e := p.Sys.SockSend(sock, 0xB, 7100, msg); e != sys.EOK {
				clientErr <- fmt.Errorf("client send %d: %v", i, e)
				return 1
			}
			echo, _, _, e := p.Sys.SockRecvBlocking(sock)
			if e != sys.EOK {
				clientErr <- fmt.Errorf("client recv %d: %v", i, e)
				return 1
			}
			if string(echo) != string(msg) {
				clientErr <- fmt.Errorf("round %d: echoed %q", i, echo)
				return 1
			}
		}
		clientErr <- nil
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	sa.WaitAll()
	sb.WaitAll()
}
