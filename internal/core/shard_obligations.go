package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// The sharded-composition verification conditions (§4.1 applied across
// NR instances instead of within one):
//
//   - shard-isolation: every piece of partitioned state lives only on
//     the shard its key maps to — descriptor tables on ShardOf(pid),
//     file contents on ShardOf(ino) — while the replicated namespace is
//     identical everywhere.
//   - cross-shard-ordering: the two-step protocols (open, read/write
//     under descriptor locks, spawn/attach, detach/exit) survive
//     concurrent namespace churn without violating the per-syscall
//     contract, replica agreement, or structural invariants.
//   - sharded-refines-single-machine-spec: a scripted syscall sequence
//     produces byte-identical responses on a sharded kernel and on the
//     monolithic single-NR kernel — the sharding is invisible through
//     the syscall interface.
func registerShardObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "shard-isolation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return shardIsolationWorkload(r) }},
		verifier.Obligation{Module: "core", Name: "cross-shard-ordering", Kind: verifier.KindSafety,
			Budget: func(r *rand.Rand, budget int) error {
				return crossShardOrderingWorkload(r, 6*budget)
			}},
		verifier.Obligation{Module: "core", Name: "sharded-refines-single-machine-spec", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return shardRefinementCheck(r) }},
	)
}

// shardIsolationWorkload spawns processes that hold open files, then
// inspects every kernel directly: a PID's descriptor table must exist
// only on its owner process shard, file contents only on the inode's
// owner filesystem shard, and the namespace must be replicated intact.
func shardIsolationWorkload(r *rand.Rand) error {
	const shards, procs = 4, 8
	s, err := Boot(Config{Cores: 4, Shards: shards, MemBytes: 256 << 20})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	block := make(chan struct{})
	var wg sync.WaitGroup
	pids := make([]proc.PID, procs)
	for i := 0; i < procs; i++ {
		i := i
		data := make([]byte, 64+r.Intn(64)) // outside the goroutine: rand.Rand is not goroutine-safe
		r.Read(data)
		wg.Add(1)
		p, err := s.Run(initSys, fmt.Sprintf("iso%d", i), func(p *Process) int {
			fd, e := p.Sys.Open(fmt.Sprintf("/f%d", i), fs.OCreate|fs.ORdWr)
			if e != sys.EOK {
				wg.Done()
				return 1
			}
			_, _ = p.Sys.Write(fd, data)
			wg.Done()
			<-block
			_ = p.Sys.Close(fd)
			return 0
		})
		if err != nil {
			return err
		}
		pids[i] = p.PID
	}
	wg.Wait() // every process holds its descriptor and has written data

	// Descriptor tables live only with their owner process shard.
	for _, pid := range pids {
		owner := s.ProcShardOf(pid)
		for i := 0; i < shards; i++ {
			var has bool
			s.InspectProcShard(i, 0, func(k *sys.Kernel) { _, has = k.SnapshotFDs(pid) })
			if has != (i == owner) {
				return fmt.Errorf("pid %d: fd table present=%v on proc shard %d, owner is %d",
					pid, has, i, owner)
			}
		}
	}
	// File contents live only with their owner filesystem shard.
	for i := 0; i < shards; i++ {
		var inos []fs.Ino
		s.InspectFsShard(i, 0, func(k *sys.Kernel) { inos = k.FS().InodesWithData() })
		for _, ino := range inos {
			if s.FsShardOf(ino) != i {
				return fmt.Errorf("ino %d has data on fs shard %d, owner is %d", ino, i, s.FsShardOf(ino))
			}
		}
	}
	close(block)
	s.WaitAll()
	for range pids {
		if _, e := initSys.Wait(); e != sys.EOK {
			return fmt.Errorf("wait: %v", e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return err
	}
	// Namespace replication + per-shard replica agreement.
	if err := s.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s.CheckKernelInvariants()
}

// crossShardOrderingWorkload drives the full random workload on a
// sharded kernel while a churner hammers the broadcast namespace path
// (create/rename/link/unlink in a private directory) from another
// handler — interleaving every two-step protocol with namespace
// mutations on all shards.
func crossShardOrderingWorkload(r *rand.Rand, procs int) error {
	s, err := Boot(Config{Cores: 8, Shards: 4, MemBytes: 256 << 20})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	if e := initSys.Mkdir("/tmp"); e != sys.EOK {
		return fmt.Errorf("mkdir: %v", e)
	}
	if e := initSys.Mkdir("/churn"); e != sys.EOK {
		return fmt.Errorf("mkdir churn: %v", e)
	}
	h, err := s.newHandler()
	if err != nil {
		return err
	}
	churner := sys.NewSys(proc.InitPID, h)
	stop := make(chan struct{})
	churnErr := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				churnErr <- nil
				return
			default:
			}
			a := fmt.Sprintf("/churn/a%d", i%7)
			b := fmt.Sprintf("/churn/b%d", i%7)
			fd, e := churner.Open(a, fs.OCreate|fs.OWrOnly)
			if e != sys.EOK {
				churnErr <- fmt.Errorf("churn open: %v", e)
				return
			}
			if _, e := churner.Write(fd, []byte("x")); e != sys.EOK {
				churnErr <- fmt.Errorf("churn write: %v", e)
				return
			}
			if e := churner.Close(fd); e != sys.EOK {
				churnErr <- fmt.Errorf("churn close: %v", e)
				return
			}
			if e := churner.Rename(a, b); e != sys.EOK {
				churnErr <- fmt.Errorf("churn rename: %v", e)
				return
			}
			if e := churner.Link(b, a); e != sys.EOK {
				churnErr <- fmt.Errorf("churn link: %v", e)
				return
			}
			if e := churner.Unlink(a); e != sys.EOK {
				churnErr <- fmt.Errorf("churn unlink: %v", e)
				return
			}
			if e := churner.Unlink(b); e != sys.EOK {
				churnErr <- fmt.Errorf("churn unlink b: %v", e)
				return
			}
		}
	}()
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		i := i
		seed := r.Int63()
		if _, err := s.Run(initSys, fmt.Sprintf("ord%d", i), func(p *Process) int {
			errs <- workerBody(p, i, seed)
			return 0
		}); err != nil {
			return err
		}
	}
	for i := 0; i < procs; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	close(stop)
	if err := <-churnErr; err != nil {
		return err
	}
	s.WaitAll()
	for i := 0; i < procs; i++ {
		if _, e := initSys.Wait(); e != sys.EOK {
			return fmt.Errorf("wait: %v", e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return err
	}
	if err := churner.ContractErr(); err != nil {
		return err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s.CheckKernelInvariants()
}

// shardRefinementCheck runs one scripted syscall sequence against a
// monolithic kernel and a 4-shard kernel and requires identical
// observable behavior: same errnos, same values, same bytes. This is
// the composition's refinement obligation — the sharded machine
// implements the same single-machine specification.
func shardRefinementCheck(r *rand.Rand) error {
	seed := r.Int63()
	mono, err := shardScriptTrace(Config{Cores: 2, MemBytes: 256 << 20}, seed)
	if err != nil {
		return fmt.Errorf("monolithic run: %w", err)
	}
	shrd, err := shardScriptTrace(Config{Cores: 2, Shards: 4, MemBytes: 256 << 20}, seed)
	if err != nil {
		return fmt.Errorf("sharded run: %w", err)
	}
	if len(mono) != len(shrd) {
		return fmt.Errorf("trace lengths differ: monolithic %d, sharded %d", len(mono), len(shrd))
	}
	for i := range mono {
		if mono[i] != shrd[i] {
			return fmt.Errorf("trace step %d diverged:\n  monolithic: %s\n  sharded:    %s",
				i, mono[i], shrd[i])
		}
	}
	return nil
}

// shardScriptTrace boots cfg and runs a fixed syscall script, rendering
// every observable result (errno, value, data) to a string trace.
func shardScriptTrace(cfg Config, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	s, err := Boot(cfg)
	if err != nil {
		return nil, err
	}
	initSys, err := s.Init()
	if err != nil {
		return nil, err
	}
	var trace []string
	rec := func(format string, args ...any) { trace = append(trace, fmt.Sprintf(format, args...)) }

	rec("mkdir /a: %v", initSys.Mkdir("/a"))
	rec("mkdir /a: %v", initSys.Mkdir("/a")) // EEXIST both ways
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/a/f%d", i)
		fd, e := initSys.Open(path, fs.OCreate|fs.ORdWr)
		rec("open %s: fd=%d %v", path, fd, e)
		data := make([]byte, 100+rng.Intn(400))
		rng.Read(data)
		n, e := initSys.Write(fd, data)
		rec("write %s: n=%d %v", path, n, e)
		pos, e := initSys.Seek(fd, int64(-rng.Intn(50)), fs.SeekEnd)
		rec("seek %s: pos=%d %v", path, pos, e)
		buf := make([]byte, 64)
		n, e = initSys.Read(fd, buf)
		rec("read %s: n=%d %x %v", path, n, buf[:n], e)
		if i%2 == 0 {
			e = initSys.Truncate(fd, uint64(rng.Intn(100)))
			rec("truncate %s: %v", path, e)
		}
		rec("close %s: %v", path, initSys.Close(fd))
		st, e := initSys.Stat(path)
		rec("stat %s: size=%d %v", path, st.Size, e)
	}
	rec("rename: %v", initSys.Rename("/a/f0", "/a/g0"))
	rec("link: %v", initSys.Link("/a/g0", "/a/h0"))
	rec("unlink: %v", initSys.Unlink("/a/f1"))
	rec("unlink missing: %v", initSys.Unlink("/a/f1"))
	ents, e := initSys.ReadDir("/a")
	rec("readdir: %d %v", len(ents), e)
	for _, ent := range ents {
		st, e := initSys.Stat("/a/" + ent.Name)
		rec("stat /a/%s: size=%d nlink=%d %v", ent.Name, st.Size, st.Nlink, e)
	}
	// Process lifecycle: spawn, child does file I/O, exit, reap.
	for i := 0; i < 3; i++ {
		done := make(chan struct{})
		_, err := s.Run(initSys, fmt.Sprintf("c%d", i), func(p *Process) int {
			fd, e := p.Sys.Open("/a/g0", fs.ORdOnly)
			rec("child open: fd=%d %v", fd, e)
			pid, e := p.Sys.GetPID()
			rec("child getpid: %d %v", pid, e)
			rec("child close: %v", p.Sys.Close(fd))
			close(done)
			return 10 + i
		})
		if err != nil {
			return nil, err
		}
		<-done
		s.WaitAll()
		res, e := initSys.Wait()
		rec("wait: pid=%d code=%d %v", res.PID, res.ExitCode, e)
	}
	rec("read badfd: %v", func() sys.Errno { _, e := initSys.Read(9999, make([]byte, 4)); return e }())
	rec("open missing: %v", func() sys.Errno { _, e := initSys.Open("/nope/x", fs.ORdOnly); return e }())
	rec("rmdir nonempty: %v", initSys.Rmdir("/a"))
	if err := initSys.ContractErr(); err != nil {
		return nil, err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return nil, err
	}
	if err := s.CheckKernelInvariants(); err != nil {
		return nil, err
	}
	return trace, nil
}
