package core

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/sys"
)

// Wait-mode stress: several processes hammer the completion-driven reap
// path — blocking waits, partial WaitN reaps, poll loops, completion
// callbacks — on the monolithic and sharded kernels. Runs under -race
// in CI. The scheduler-idle assertion rides along: nothing in this
// workload uses WaitSpin, so a single recorded spin iteration means a
// blocking or polling wait burned a core it had no business burning —
// the same "idle core must stay idle" discipline as
// TestIdleCoreIRQDelivered enforces for interrupt polling.
func TestRingWaitModeStress(t *testing.T) {
	forEachKernelMode(t, func(t *testing.T, shards int) {
		obs.Reset()
		obs.Enable()
		defer obs.Disable()
		s, initSys := bootMode(t, shards)
		const workers = 4
		const rounds = 6
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			w := w
			_, err := s.Run(initSys, fmt.Sprintf("waitmode%d", w), func(p *Process) int {
				fail := func(f string, a ...any) int {
					errs <- fmt.Errorf("worker %d: "+f, append([]any{w}, a...)...)
					return 1
				}
				fd, e := p.Sys.Open(fmt.Sprintf("/wm%d", w), sys.OCreate|sys.ORdWr)
				if e != sys.EOK {
					return fail("open: %v", e)
				}
				for r := 0; r < rounds; r++ {
					n := 16 + 24*w
					ops := make([]sys.Op, n)
					for i := range ops {
						ops[i] = sys.OpWrite(fd, []byte{byte(r), byte(i)})
					}
					switch r % 3 {
					case 0: // blocking wait with a partial reap first
						b := p.Sys.NewBatch(sys.SubmitOptions{Wait: sys.WaitBlock}).Add(ops...)
						if err := b.Submit(); err != nil {
							return fail("submit: %v", err)
						}
						if part, err := b.WaitN(n / 2); err != nil || len(part) < n/2 {
							return fail("waitN: %d comps, %v", len(part), err)
						}
						comps, err := b.Wait()
						if err != nil || len(comps) != n {
							return fail("block wait: %d comps, %v", len(comps), err)
						}
					case 1: // poll loop, yielding between polls
						b := p.Sys.SubmitOpts(ops, sys.SubmitOptions{Wait: sys.WaitPoll})
						for {
							comps, err := b.Wait()
							if err == sys.ErrBatchPending {
								runtime.Gosched()
								continue
							}
							if err != nil || len(comps) != n {
								return fail("poll wait: %d comps, %v", len(comps), err)
							}
							break
						}
					default: // callback delivery, then a blocking reap
						cb := make(chan int, 1)
						b := p.Sys.SubmitOpts(ops, sys.SubmitOptions{
							OnComplete: func(comps []sys.Completion, err error) { cb <- len(comps) }})
						if comps, err := b.Wait(); err != nil || len(comps) != n {
							return fail("cb wait: %d comps, %v", len(comps), err)
						}
						if got := <-cb; got != n {
							return fail("callback saw %d of %d completions", got, n)
						}
					}
					// A scalar syscall interleaved with in-flight batches
					// keeps the handler's context serialization honest.
					if _, e := p.Sys.GetPID(); e != sys.EOK {
						return fail("getpid: %v", e)
					}
				}
				errs <- nil
				return 0
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		s.WaitAll()
		if spins := obs.RingWaitSpins.Load(); spins != 0 {
			t.Fatalf("scheduler-idle violated: %d spin iterations from non-spin wait modes", spins)
		}
		if err := initSys.ContractErr(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckReplicaAgreement(); err != nil {
			t.Fatal(err)
		}
	})
}
