package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerRingWaitObligations: the completion-driven reap path composed
// with the real kernel. The sys-level ring-wait-no-lost-wakeup VC
// sweeps the park/post interleavings against a direct handler; this one
// re-discharges the end-to-end form — blocking waiters, partial WaitN
// reaps, and completion callbacks racing real combiner drains — on the
// monolithic and the sharded kernel, per the §4.3 compose-per-service
// methodology (the wake path is a new service; it gets its own
// obligation in every composition it ships in).
func registerRingWaitObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "ring-wait-no-lost-wakeup", Kind: verifier.KindModelCheck,
			Budget: func(r *rand.Rand, budget int) error {
				for b := 0; b < budget; b++ {
					if err := ringWaitRun(r, 0); err != nil {
						return fmt.Errorf("monolithic: %w", err)
					}
					if err := ringWaitRun(r, 2); err != nil {
						return fmt.Errorf("sharded: %w", err)
					}
				}
				return nil
			}},
	)
}

// ringWaitRun drives several processes through blocking-wait batches
// with partial reaps on one kernel: every submitted op must complete
// exactly once (counted through the completion callback), every parked
// waiter must wake, and the contract and replica-agreement checks must
// hold afterwards.
func ringWaitRun(r *rand.Rand, shards int) error {
	s, err := Boot(Config{Cores: 4, MemBytes: 256 << 20, Shards: shards})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	const procs = 3
	const rounds = 4
	seed := r.Int63()
	errs := make(chan error, procs)
	var submitted, completed sync.Map // pid → op counts via callback
	for w := 0; w < procs; w++ {
		w := w
		_, err := s.Run(initSys, fmt.Sprintf("waiter%d", w), func(p *Process) int {
			rr := rand.New(rand.NewSource(seed + int64(w)))
			fail := func(f string, a ...any) int {
				errs <- fmt.Errorf("waiter %d: "+f, append([]any{w}, a...)...)
				return 1
			}
			fd, e := p.Sys.Open(fmt.Sprintf("/w%d", w), sys.OCreate|sys.ORdWr)
			if e != sys.EOK {
				return fail("open: %v", e)
			}
			subTotal, cbTotal := 0, 0
			for round := 0; round < rounds; round++ {
				n := 8 + rr.Intn(120) // some batches span multiple chunks
				ops := make([]sys.Op, n)
				for i := range ops {
					ops[i] = sys.OpWrite(fd, []byte{byte(i)})
				}
				cb := make(chan int, 1)
				b := p.Sys.NewBatch(sys.SubmitOptions{Wait: sys.WaitBlock,
					OnComplete: func(comps []sys.Completion, err error) { cb <- len(comps) }}).Add(ops...)
				if err := b.Submit(); err != nil {
					return fail("submit: %v", err)
				}
				subTotal += n
				// Partial reap first: at least half must be deliverable
				// before the batch is done, without consuming it.
				half := n / 2
				part, err := b.WaitN(half)
				if err != nil {
					return fail("waitN(%d): %v", half, err)
				}
				if len(part) < half {
					return fail("waitN(%d) returned %d completions", half, len(part))
				}
				comps, err := b.Wait()
				if err != nil {
					return fail("wait: %v", err)
				}
				if len(comps) != n {
					return fail("round %d: %d of %d completions", round, len(comps), n)
				}
				for i, c := range comps {
					if c.Errno != sys.EOK || c.Val != 1 {
						return fail("round %d op %d: errno %v val %d", round, i, c.Errno, c.Val)
					}
				}
				if _, err := b.Wait(); err != sys.ErrBatchReaped {
					return fail("second reap: %v", err)
				}
				cbTotal += <-cb
			}
			submitted.Store(w, subTotal)
			completed.Store(w, cbTotal)
			errs <- nil
			return 0
		})
		if err != nil {
			return err
		}
	}
	for w := 0; w < procs; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	s.WaitAll()
	for w := 0; w < procs; w++ {
		sub, _ := submitted.Load(w)
		got, _ := completed.Load(w)
		if sub != got {
			return fmt.Errorf("waiter %d: %v ops submitted, %v delivered via callback", w, sub, got)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return fmt.Errorf("contract: %w", err)
	}
	return s.CheckReplicaAgreement()
}
