package core

import (
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/sys"
)

// TestRingConcurrentSubmit is the ring's -race stress: multiple
// processes on different cores/replicas, each draining batched
// submissions while some also interleave scalar syscalls and async
// batches on the same handle. Afterwards every replica must agree and
// no contract may have tripped.
func TestRingConcurrentSubmit(t *testing.T) {
	s, initSys := bootTest(t, 28) // two replicas
	const (
		workers = 6
		rounds  = 20
		batch   = 8
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		_, err := s.Run(initSys, fmt.Sprintf("ring-worker%d", w), func(p *Process) int {
			path := fmt.Sprintf("/ring-%d", p.PID)
			fd, e := p.Sys.Open(path, fs.OCreate|fs.ORdWr)
			if e != sys.EOK {
				errs <- fmt.Errorf("open: %v", e)
				return 1
			}
			for r := 0; r < rounds; r++ {
				ops := make([]sys.Op, 0, batch+2)
				for i := 0; i < batch; i++ {
					ops = append(ops, sys.OpWrite(fd, []byte(fmt.Sprintf("r%d-i%d;", r, i))))
				}
				ops = append(ops, sys.OpSeek(fd, 0, fs.SeekSet), sys.OpRead(fd, 32))
				// Async submit, then a scalar syscall on the same handle
				// while the batch may still be in flight — the handler
				// must serialize the NR context underneath.
				b := p.Sys.Submit(ops)
				if _, e := p.Sys.GetPID(); e != sys.EOK {
					errs <- fmt.Errorf("getpid during batch: %v", e)
					return 1
				}
				comps, err := b.Wait()
				if err != nil {
					errs <- fmt.Errorf("round %d: batch error %v", r, err)
					return 1
				}
				for i, c := range comps {
					if c.Errno != sys.EOK {
						errs <- fmt.Errorf("round %d op %d (%s): %v", r, i, sys.OpName(c.Op), c.Errno)
						return 1
					}
				}
			}
			if e := p.Sys.Close(fd); e != sys.EOK {
				errs <- fmt.Errorf("close: %v", e)
				return 1
			}
			errs <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	s.WaitAll()
	for w := 0; w < workers; w++ {
		if _, e := initSys.Wait(); e != sys.EOK {
			t.Fatalf("wait: %v", e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		t.Errorf("init contract: %v", err)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Error(err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRingBatchContractEndToEnd drives a batch through the real NR
// dispatch path and checks the per-process contract saw nothing wrong,
// plus the ENOSYS fencing for non-batchable ops smuggled into a frame.
func TestRingBatchContractEndToEnd(t *testing.T) {
	s, initSys := bootTest(t, 2)
	comps, e := initSys.SubmitWait([]sys.Op{
		sys.OpMkdir("/e2e"),
		sys.OpOpen("/e2e/f", sys.OCreate|sys.ORdWr),
	})
	if e != sys.EOK {
		t.Fatal(e)
	}
	fd := fs.FD(comps[1].Val)
	comps, e = initSys.SubmitWait([]sys.Op{
		sys.OpWrite(fd, []byte("batched through the combiner")),
		sys.OpSeek(fd, 8, fs.SeekSet),
		sys.OpRead(fd, 7),
		sys.OpClose(fd),
	})
	if e != sys.EOK {
		t.Fatal(e)
	}
	if string(comps[2].Data) != "through" {
		t.Errorf("batched read = %q", comps[2].Data)
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatalf("contract: %v", err)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
}
