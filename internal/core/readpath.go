package core

import (
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// This file is the core half of the sharded page cache (internal/
// pcache): the pread family's dispatch, the cache's frame source over
// the shared data-frame allocator, and the boot/teardown wiring that
// keeps cache-owned frames out of the buddy allocator while readers or
// mappings can still reach them.
//
// The read-path contract: a pread resolves its descriptor with one
// replica-local ExecuteRead (NumFDGet — never the write log), then
// serves bytes from the per-fs-shard cache. Cache hits copy out under
// an epoch pin without touching any NR instance; misses fill with one
// more ExecuteRead (NumFsReadAt) against the inode's owner shard.
// Writers invalidate through the fs Invalidator hook as their mutation
// applies, before the write returns — so a pread that starts after a
// write completes can never serve the overwritten bytes.

// cacheFrames adapts the system's shared data-frame allocator and
// physical memory to pcache.FrameSource.
type cacheFrames struct{ s *System }

func (cf cacheFrames) AllocFrame() (mem.PAddr, error) {
	fr, err := cf.s.allocDataFrames(1)
	if err != nil {
		return 0, err
	}
	return fr[0], nil
}

func (cf cacheFrames) FreeFrame(f mem.PAddr) { cf.s.freeDataFrames([]mem.PAddr{f}) }

func (cf cacheFrames) WriteFrame(f mem.PAddr, off uint64, p []byte) {
	_ = cf.s.Machine.Mem.Write(f+mem.PAddr(off), p)
}

func (cf cacheFrames) ReadFrame(f mem.PAddr, off uint64, p []byte) {
	_ = cf.s.Machine.Mem.Read(f+mem.PAddr(off), p)
}

// pcacheFor returns the cache serving an inode's pages: the inode's
// owner shard's cache, or the single cache on a monolithic kernel.
func (s *System) pcacheFor(ino fs.Ino) *pcache.Cache {
	if s.sharded() {
		return s.pcaches[s.FsShardOf(ino)]
	}
	return s.pcaches[0]
}

// PCache exposes a shard's cache for obligations and tools (shard 0 on
// a monolithic system).
func (s *System) PCache(shard int) *pcache.Cache { return s.pcaches[shard] }

// unpinFrames routes cache-owned frames whose vspace alias went away
// (Resp.Unpinned from page_unmap/exit) back to their owning cache. They
// must never reach freeDataFrames: the cache still serves reads from
// them, and reclamation frees them only at epoch quiescence.
func (s *System) unpinFrames(frames []mem.PAddr) {
	for _, f := range frames {
		for _, c := range s.pcaches {
			if c.Owns(f) {
				c.UnmapFrame(f)
				break
			}
		}
	}
}

// preadResolve resolves a descriptor to (ino, flags) with one
// replica-local read — the only kernel crossing a cache-hit pread pays.
func (h *handler) preadResolve(pid proc.PID, fd fs.FD) (fs.Ino, int, sys.Resp) {
	op := sys.ReadOp{Num: sys.NumFDGet, PID: pid, FD: fd}
	var g sys.Resp
	if h.s.sharded() {
		h.ctxMu.Lock()
		g = h.procReadOn(h.s.ProcShardOf(pid), op)
		h.ctxMu.Unlock()
	} else {
		g = h.executeRead(op)
	}
	if g.Errno != sys.EOK {
		return 0, 0, g
	}
	return g.Ino, int(g.Val), sys.Resp{Errno: sys.EOK}
}

// preadFill returns the Filler backing cache misses: one ExecuteRead of
// the page against the inode's owner (the authoritative contents).
func (h *handler) preadFill(pid proc.PID) pcache.Filler {
	return func(ino fs.Ino, off uint64, p []byte) (int, sys.Errno) {
		op := sys.ReadOp{Num: sys.NumFsReadAt, PID: pid, Ino: ino, Off: off, Len: uint64(len(p))}
		var r sys.Resp
		if h.s.sharded() {
			h.ctxMu.Lock()
			r = h.fsReadOn(h.s.FsShardOf(ino), op)
			h.ctxMu.Unlock()
		} else {
			r = h.executeRead(op)
		}
		if r.Errno != sys.EOK {
			return 0, r.Errno
		}
		copy(p, r.Data)
		return int(r.Val), sys.EOK
	}
}

// pread serves NumPread: descriptor resolve, permission check, then the
// cache read. No descriptor lock is taken — a positioned read neither
// reads nor writes the offset, so there is no descriptor state to race
// on; concurrent writes to the same file are handled by the cache's
// invalidation protocol (page-wise read atomicity, as documented on
// pcache.ReadAt).
func (h *handler) pread(op sys.ReadOp) sys.Resp {
	ino, flags, r := h.preadResolve(op.PID, op.FD)
	if r.Errno != sys.EOK {
		return r
	}
	if flags&fs.OWrOnly != 0 {
		return sys.Resp{Errno: sys.EPERM}
	}
	buf := make([]byte, op.Len)
	n, e := h.s.pcacheFor(ino).ReadAt(ino, op.Off, buf, h.preadFill(op.PID), h.core)
	if e != sys.EOK {
		return sys.Resp{Errno: e}
	}
	return sys.Resp{Errno: sys.EOK, Val: uint64(n), Data: buf[:n]}
}

// preadMap serves NumPreadMap, the zero-copy tier: pin the cached page
// covering the page-aligned offset (populating it through the copying
// path if absent), then run the logged mapping transition that aliases
// the frame read-only into the caller's vspace. Resp.Val is the mapping
// VA; Resp.Stat.Size is the page's valid byte count.
func (h *handler) preadMap(op sys.WriteOp) sys.Resp {
	s := h.s
	if op.Off < 0 || uint64(op.Off)%pcache.PageSize != 0 {
		return sys.Resp{Errno: sys.EINVAL}
	}
	off := uint64(op.Off)
	ino, flags, r := h.preadResolve(op.PID, op.FD)
	if r.Errno != sys.EOK {
		return r
	}
	if flags&fs.OWrOnly != 0 {
		return sys.Resp{Errno: sys.EPERM}
	}
	cache := s.pcacheFor(ino)
	frame, n, ok := cache.MapPage(ino, off, h.core)
	if !ok {
		// Miss: populate the page through the copying path (which fills
		// and inserts the whole page), then pin it. A second failure
		// means an invalidation raced us — the caller may retry.
		var one [1]byte
		if _, e := cache.ReadAt(ino, off, one[:], h.preadFill(op.PID), h.core); e != sys.EOK {
			return sys.Resp{Errno: e}
		}
		if frame, n, ok = cache.MapPage(ino, off, h.core); !ok {
			return sys.Resp{Errno: sys.EAGAIN}
		}
	}
	mop := sys.WriteOp{Num: sys.NumPageMap, PID: op.PID, Frames: []mem.PAddr{frame}}
	var mr sys.Resp
	if s.sharded() {
		h.ctxMu.Lock()
		mr = h.procExecOn(s.ProcShardOf(op.PID), mop)
		h.ctxMu.Unlock()
	} else {
		mr = h.execute(mop)
	}
	if mr.Errno != sys.EOK {
		cache.UnmapFrame(frame) // drop the pin; the mapping never existed
		return mr
	}
	return sys.Resp{Errno: sys.EOK, Val: mr.Val, Stat: fs.Stat{Ino: ino, Size: uint64(n)}}
}

// preadUnmap serves NumPreadUnmap: the logged unmap transition returns
// the frame in Resp.Unpinned, and the cache pin drops here — never a
// buddy free.
func (h *handler) preadUnmap(op sys.WriteOp) sys.Resp {
	s := h.s
	uop := sys.WriteOp{Num: sys.NumPageUnmap, PID: op.PID, VA: op.VA}
	var r sys.Resp
	if s.sharded() {
		h.ctxMu.Lock()
		r = h.procExecOn(s.ProcShardOf(op.PID), uop)
		h.ctxMu.Unlock()
	} else {
		r = h.execute(uop)
	}
	if r.Errno == sys.EOK {
		s.unpinFrames(r.Unpinned)
	}
	return r
}
