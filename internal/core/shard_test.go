package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

func bootSharded(t *testing.T, cores, shards int) (*System, *sys.Sys) {
	t.Helper()
	s, err := Boot(Config{Cores: cores, Shards: shards, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		t.Fatal(err)
	}
	return s, initSys
}

func TestShardedBootGates(t *testing.T) {
	if _, err := Boot(Config{Shards: 2, WAL: true, MemBytes: 256 << 20}); err != nil {
		t.Errorf("sharding + WAL rejected: %v", err)
	}
	if _, err := Boot(Config{Shards: 2, RestoreFS: true, MemBytes: 256 << 20}); err == nil {
		t.Error("sharded restore without WAL accepted")
	}
	if _, err := Boot(Config{Shards: 64, MemBytes: 256 << 20}); err == nil {
		t.Error("shard count beyond the obs slot space accepted")
	}
	s, err := Boot(Config{Shards: 4, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sharded() || s.NumShards() != 4 {
		t.Errorf("sharded=%v shards=%d", s.Sharded(), s.NumShards())
	}
}

func TestShardedFileSyscalls(t *testing.T) {
	s, initSys := bootSharded(t, 2, 4)
	if e := initSys.Mkdir("/d"); e != sys.EOK {
		t.Fatalf("mkdir: %v", e)
	}
	fd, e := initSys.Open("/d/f", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatalf("open: %v", e)
	}
	if _, e := initSys.Write(fd, []byte("hello, shard")); e != sys.EOK {
		t.Fatalf("write: %v", e)
	}
	if _, e := initSys.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
		t.Fatalf("seek: %v", e)
	}
	buf := make([]byte, 32)
	n, e := initSys.Read(fd, buf)
	if e != sys.EOK || string(buf[:n]) != "hello, shard" {
		t.Fatalf("read: %q %v", buf[:n], e)
	}
	// SeekEnd consults the data owner's authoritative size.
	pos, e := initSys.Seek(fd, -5, fs.SeekEnd)
	if e != sys.EOK || pos != 7 {
		t.Fatalf("seek end: pos=%d %v", pos, e)
	}
	// Stat crosses from a namespace replica to the data owner.
	st, e := initSys.Stat("/d/f")
	if e != sys.EOK || st.Size != 12 {
		t.Fatalf("stat: %+v %v", st, e)
	}
	if e := initSys.Truncate(fd, 5); e != sys.EOK {
		t.Fatalf("truncate: %v", e)
	}
	if st, e = initSys.Stat("/d/f"); e != sys.EOK || st.Size != 5 {
		t.Fatalf("stat after truncate: %+v %v", st, e)
	}
	// Append resolves EOF on the owner shard. Use an uncontracted handle:
	// write_spec models a cursor write, so an OAppend write is outside
	// the per-descriptor contract in monolithic mode too.
	ah, err := s.newHandler()
	if err != nil {
		t.Fatal(err)
	}
	raw := sys.NewSys(proc.InitPID, ah)
	afd, e := raw.Open("/d/f", fs.OWrOnly|fs.OAppend)
	if e != sys.EOK {
		t.Fatalf("open append: %v", e)
	}
	if _, e := raw.Write(afd, []byte("++")); e != sys.EOK {
		t.Fatalf("append: %v", e)
	}
	if st, e = initSys.Stat("/d/f"); e != sys.EOK || st.Size != 7 {
		t.Fatalf("stat after append: %+v %v", st, e)
	}
	// Namespace ops broadcast: rename + link + readdir agree everywhere.
	if e := initSys.Rename("/d/f", "/d/g"); e != sys.EOK {
		t.Fatalf("rename: %v", e)
	}
	if e := initSys.Link("/d/g", "/d/h"); e != sys.EOK {
		t.Fatalf("link: %v", e)
	}
	ents, e := initSys.ReadDir("/d")
	if e != sys.EOK || len(ents) != 2 {
		t.Fatalf("readdir: %v %v", ents, e)
	}
	if e := initSys.Unlink("/d/h"); e != sys.EOK {
		t.Fatalf("unlink: %v", e)
	}
	if _, e := initSys.Stat("/d/h"); e != sys.ENOENT {
		t.Fatalf("stat unlinked: %v", e)
	}
	if e := initSys.Close(fd); e != sys.EOK {
		t.Fatalf("close: %v", e)
	}
	if e := raw.Close(afd); e != sys.EOK {
		t.Fatalf("close append fd: %v", e)
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedProcessesEndToEnd(t *testing.T) {
	s, initSys := bootSharded(t, 4, 4)
	if e := initSys.Mkdir("/tmp"); e != sys.EOK {
		t.Fatalf("mkdir: %v", e)
	}
	const workers = 6
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		i := i
		if _, err := s.Run(initSys, fmt.Sprintf("w%d", i), func(p *Process) int {
			errs <- workerBody(p, i, int64(i)*7919)
			return 0
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s.WaitAll()
	for i := 0; i < workers; i++ {
		if _, e := initSys.Wait(); e != sys.EOK {
			t.Fatalf("wait %d: %v", i, e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedKillAndSignals(t *testing.T) {
	s, initSys := bootSharded(t, 2, 2)
	block := make(chan struct{})
	p, err := s.Run(initSys, "victim", func(p *Process) int {
		<-block
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := initSys.Kill(p.PID, proc.SIGKILL); e != sys.EOK {
		t.Fatalf("kill: %v", e)
	}
	res, e := initSys.Wait()
	if e != sys.EOK || res.PID != p.PID {
		t.Fatalf("wait: %+v %v", res, e)
	}
	close(block)
	s.WaitAll()
	if e := initSys.Kill(proc.InitPID, proc.SIGKILL); e != sys.EPERM {
		t.Fatalf("kill init: %v", e)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
}

// Sharded WITHOUT WAL has no journal to cut consistently across the
// shard logs: Sync and SaveFS stay unsupported (walshard_core_test.go
// covers the WAL-composed path).
func TestShardedDurabilityNeedsWAL(t *testing.T) {
	s, initSys := bootSharded(t, 2, 2)
	if e := initSys.Sync(); e != sys.ENOSYS {
		t.Errorf("sync on sharded kernel without WAL: %v", e)
	}
	if err := s.SaveFS(); err == nil {
		t.Error("SaveFS on sharded kernel without WAL succeeded")
	}
}

func TestInternalOpsRejectedAtBoundary(t *testing.T) {
	for _, shards := range []int{0, 2} {
		s, err := Boot(Config{Cores: 2, Shards: shards, MemBytes: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.newHandler()
		if err != nil {
			t.Fatal(err)
		}
		for num := sys.MaxOpNum + 1; num <= sys.MaxInternalOpNum; num++ {
			ret, out := h.Syscall(marshal.SyscallFrame{Num: num}, nil)
			if resp, err := sys.DecodeResp(ret, out); err != nil || resp.Errno != sys.EINVAL {
				t.Errorf("shards=%d: internal op %d crossed the boundary: %+v %v", shards, num, resp, err)
			}
		}
	}
}

// TestIdleCoreIRQDelivered is the regression test for the interrupt
// fast path: an IRQ parked on a core that never makes syscalls must
// still be delivered by another core's syscall entry (via the pending
// probe), not starve.
func TestIdleCoreIRQDelivered(t *testing.T) {
	s, initSys := bootTest(t, 4)
	const line = 7 // free IRQ line (no device uses it)
	fired := 0
	if err := s.Dispatcher.Handle(line, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	s.Machine.IC.RaiseOn(3, line) // park it on an idle core
	if !s.Dispatcher.HasPending() {
		t.Fatal("pending probe missed the raised IRQ")
	}
	if _, e := initSys.GetPID(); e != sys.EOK { // syscall from core 0
		t.Fatalf("getpid: %v", e)
	}
	if fired != 1 {
		t.Errorf("IRQ on idle core fired %d times, want 1", fired)
	}
	if s.Dispatcher.HasPending() {
		t.Error("pending probe still set after delivery")
	}
}

// TestShardedReadsSeeWrites pins down cross-descriptor visibility: a
// write through one descriptor is visible to an independent descriptor
// of the same file routed through the same owner shard.
func TestShardedReadsSeeWrites(t *testing.T) {
	_, initSys := bootSharded(t, 2, 4)
	w, e := initSys.Open("/x", fs.OCreate|fs.OWrOnly)
	if e != sys.EOK {
		t.Fatalf("open w: %v", e)
	}
	r, e := initSys.Open("/x", fs.ORdOnly)
	if e != sys.EOK {
		t.Fatalf("open r: %v", e)
	}
	payload := []byte("cross-descriptor")
	if _, e := initSys.Write(w, payload); e != sys.EOK {
		t.Fatalf("write: %v", e)
	}
	got := make([]byte, len(payload))
	n, e := initSys.Read(r, got)
	if e != sys.EOK || !bytes.Equal(got[:n], payload) {
		t.Fatalf("read through second fd: %q %v", got[:n], e)
	}
}
