package core

import (
	"strings"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

func bootTest(t *testing.T, cores int) (*System, *sys.Sys) {
	t.Helper()
	s, err := Boot(Config{Cores: cores, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		t.Fatal(err)
	}
	return s, initSys
}

func TestBootDefaults(t *testing.T) {
	s, err := Boot(Config{MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumReplicas() != 1 {
		t.Errorf("replicas = %d", s.NumReplicas())
	}
	s28, err := Boot(Config{Cores: 28, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s28.NumReplicas() != 2 {
		t.Errorf("28 cores should give 2 replicas, got %d", s28.NumReplicas())
	}
	if _, err := Boot(Config{MemBytes: 64 << 20}); err == nil {
		t.Error("tiny memory accepted")
	}
}

func TestInitFileSyscalls(t *testing.T) {
	_, initSys := bootTest(t, 2)
	fd, e := initSys.Open("/hello", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatal(e)
	}
	if _, e := initSys.Write(fd, []byte("composed kernel")); e != sys.EOK {
		t.Fatal(e)
	}
	if _, e := initSys.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
		t.Fatal(e)
	}
	buf := make([]byte, 8)
	if _, e := initSys.Read(fd, buf); e != sys.EOK || string(buf) != "composed" {
		t.Fatalf("read = %q, %v", buf, e)
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessLifecycleThroughSystem(t *testing.T) {
	s, initSys := bootTest(t, 4)
	done := make(chan int, 1)
	p, err := s.Run(initSys, "child", func(p *Process) int {
		pid, e := p.Sys.GetPID()
		if e != sys.EOK || pid != p.PID {
			done <- -1
			return 1
		}
		done <- int(pid)
		return 42
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != int(p.PID) {
		t.Fatalf("child saw pid %d", got)
	}
	s.WaitAll()
	res, e := initSys.Wait()
	if e != sys.EOK || res.PID != p.PID || res.ExitCode != 42 {
		t.Fatalf("wait = %+v, %v", res, e)
	}
}

func TestUserMemoryThroughSystem(t *testing.T) {
	s, initSys := bootTest(t, 2)
	errs := make(chan error, 1)
	_, err := s.Run(initSys, "mem", func(p *Process) int {
		base, e := p.Sys.MMap(3 * 4096)
		if e != sys.EOK {
			errs <- e
			return 1
		}
		msg := []byte("crossing pages: " + strings.Repeat("z", 5000))
		if e := p.Sys.MemWrite(base+100, msg); e != sys.EOK {
			errs <- e
			return 1
		}
		got := make([]byte, len(msg))
		if e := p.Sys.MemRead(base+100, got); e != sys.EOK {
			errs <- e
			return 1
		}
		if string(got) != string(msg) {
			errs <- sys.EFAULT
			return 1
		}
		if e := p.Sys.MUnmap(base); e != sys.EOK {
			errs <- e
			return 1
		}
		if e := p.Sys.MemRead(base, got[:4]); e != sys.EFAULT {
			errs <- e
			return 1
		}
		errs <- nil
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := <-errs; e != nil {
		t.Fatal(e)
	}
	s.WaitAll()
}

func TestMultiReplicaAgreement(t *testing.T) {
	s, initSys := bootTest(t, 28) // 2 replicas
	if s.NumReplicas() != 2 {
		t.Fatalf("replicas = %d", s.NumReplicas())
	}
	// Processes land on different cores/replicas (round-robin).
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		_, err := s.Run(initSys, name, func(p *Process) int {
			fd, e := p.Sys.Open("/"+name, fs.OCreate|fs.ORdWr)
			if e != sys.EOK {
				results <- e
				return 1
			}
			if _, e := p.Sys.Write(fd, []byte(name)); e != sys.EOK {
				results <- e
				return 1
			}
			results <- nil
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if e := <-results; e != nil {
			t.Fatal(e)
		}
	}
	s.WaitAll()
	if err := s.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		t.Fatal(err)
	}
	// Files visible from init (replica 0's path) regardless of writer.
	for i := 0; i < 4; i++ {
		if _, e := initSys.Stat("/" + string(rune('a'+i))); e != sys.EOK {
			t.Errorf("file %c missing: %v", 'a'+i, e)
		}
	}
}

func TestNetworkBetweenSystems(t *testing.T) {
	wire := netstack.NewNetwork()
	sa, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, NICAddr: 0xA, Network: wire})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, NICAddr: 0xB, Network: wire})
	if err != nil {
		t.Fatal(err)
	}
	initA, _ := sa.Init()
	initB, _ := sb.Init()

	// Server on B.
	ready := make(chan sys.SockID, 1)
	got := make(chan string, 1)
	_, err = sb.Run(initB, "server", func(p *Process) int {
		sock, e := p.Sys.SockBind(7000)
		if e != sys.EOK {
			ready <- 0
			return 1
		}
		ready <- sock
		payload, from, fromPort, e := p.Sys.SockRecvBlocking(sock)
		if e != sys.EOK {
			got <- "recv error"
			return 1
		}
		_, _ = p.Sys.SockSend(sock, from, fromPort, []byte("ack:"+string(payload)))
		got <- string(payload)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if <-ready == 0 {
		t.Fatal("server bind failed")
	}

	// Client on A.
	reply := make(chan string, 1)
	_, err = sa.Run(initA, "client", func(p *Process) int {
		sock, e := p.Sys.SockBind(0)
		if e != sys.EOK {
			reply <- "bind fail"
			return 1
		}
		if _, e := p.Sys.SockSend(sock, 0xB, 7000, []byte("hello-b")); e != sys.EOK {
			reply <- "send fail"
			return 1
		}
		payload, _, _, e := p.Sys.SockRecvBlocking(sock)
		if e != sys.EOK {
			reply <- "recv fail"
			return 1
		}
		reply <- string(payload)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := <-got; msg != "hello-b" {
		t.Fatalf("server got %q", msg)
	}
	if msg := <-reply; msg != "ack:hello-b" {
		t.Fatalf("client got %q", msg)
	}
	sa.WaitAll()
	sb.WaitAll()
}

func TestConsole(t *testing.T) {
	s, _ := bootTest(t, 1)
	s.Printf("boot: %d cores\n", 1)
	if !strings.Contains(s.ConsoleOutput(), "boot: 1 cores") {
		t.Fatalf("console = %q", s.ConsoleOutput())
	}
}

func TestComponentInventoryDerivesFullTable2(t *testing.T) {
	s, _ := bootTest(t, 1)
	self := s.Components.Derive("vnros")
	for _, row := range relwork.Table2Components {
		if self.Table2[row] != relwork.Yes {
			t.Errorf("component %q not fully covered: %v", row, self.Table2[row])
		}
	}
	if self.Table1["Process-centric spec"] != relwork.Yes {
		t.Error("process-centric spec claim missing")
	}
	if self.Table1["Security properties"] == relwork.Yes {
		t.Error("security must not be claimed as full (the paper defers it)")
	}
}

func TestKillCleansUpLocalState(t *testing.T) {
	s, initSys := bootTest(t, 2)
	started := make(chan proc.PID, 1)
	blocked := make(chan sys.Errno, 1)
	_, err := s.Run(initSys, "victim", func(p *Process) int {
		sock, e := p.Sys.SockBind(9999)
		if e != sys.EOK {
			started <- 0
			return 1
		}
		_ = sock
		base, e := p.Sys.MMap(4096)
		if e != sys.EOK {
			started <- 0
			return 1
		}
		started <- p.PID
		// Park on a futex forever; SIGKILL must release us.
		blocked <- p.Sys.FutexWait(base, 0)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	pid := <-started
	if pid == 0 {
		t.Fatal("victim setup failed")
	}
	if e := initSys.Kill(pid, proc.SIGKILL); e != sys.EOK {
		t.Fatal(e)
	}
	<-blocked // futex released by cleanup
	s.WaitAll()
	// The port is free again.
	if _, err := s.Net.Bind(9999); err != nil {
		t.Fatalf("port not released: %v", err)
	}
	res, e := initSys.Wait()
	if e != sys.EOK || res.PID != pid {
		t.Fatalf("wait = %+v, %v", res, e)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 67})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}

func TestRegisterAllObligationsCount(t *testing.T) {
	g := &verifier.Registry{}
	RegisterAllObligations(g)
	if g.Len() < 50 {
		t.Fatalf("expected >= 50 VCs across all modules, got %d", g.Len())
	}
	t.Logf("total verification conditions: %d", g.Len())
}
