package core

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
)

// Process is a running user program's handle: its Sys syscall interface
// plus identity. User programs are Go functions — the §3 execution
// model's pragmatic stance ("take a systems programming language and
// assume the OS's abstract model of CPU execution and memory matches
// the language's semantics") applied to Go instead of Rust.
type Process struct {
	Sys  *sys.Sys
	PID  proc.PID
	Core int
	sys  *System
}

// Program is a user program body; its return value is the exit code.
type Program func(p *Process) int

// newHandler allocates a syscall handler pinned to the next core
// (round-robin), registering an NR thread context on that core's
// replica.
func (s *System) newHandler() (*handler, error) {
	s.procMu.Lock()
	core := s.nextCore % s.cfg.Cores
	s.nextCore++
	s.procMu.Unlock()
	ctx, err := s.nr.Register(s.replicaOf(core))
	if err != nil {
		return nil, err
	}
	return &handler{s: s, core: core, ctx: ctx}, nil
}

// Init returns a Sys handle for the init process (for setup work and
// tests). Contract checking is wired to the handler core's replica.
func (s *System) Init() (*sys.Sys, error) {
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	sh := sys.NewSys(proc.InitPID, h)
	sh.EnableContract(&replicaViewer{s: s, core: h.core})
	return sh, nil
}

// replicaViewer adapts one replica's view() for the contract checker.
// The snapshot syncs the replica to the log tail first, so pre/post
// views bracket the checked syscall exactly.
type replicaViewer struct {
	s    *System
	core int
}

// ViewFDs implements sys.Viewer.
func (v *replicaViewer) ViewFDs(pid proc.PID) (fs.SpecState, bool) {
	var st fs.SpecState
	var ok bool
	v.s.nr.Replica(v.s.replicaOf(v.core)).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		st, ok = d.(*sys.Kernel).ViewFDs(pid)
	})
	return st, ok
}

// Run spawns a process as a child of parent and executes prog in its
// own goroutine ("core"). The returned Process is live immediately; use
// parent.Wait to reap it.
func (s *System) Run(parent *sys.Sys, name string, prog Program) (*Process, error) {
	pid, e := parent.Spawn(name)
	if e != sys.EOK {
		return nil, fmt.Errorf("core: spawn %q: %v", name, e)
	}
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	ps := sys.NewSys(pid, h)
	ps.EnableContract(&replicaViewer{s: s, core: h.core})
	p := &Process{Sys: ps, PID: pid, Core: h.core, sys: s}
	s.liveProcs.Add(1)
	go func() {
		defer s.liveProcs.Done()
		code := prog(p)
		// Exit is idempotent-ish: if the program already exited (or was
		// killed), the errno is EPERM and ignored.
		_ = ps.Exit(code)
	}()
	return p, nil
}

// WaitAll blocks until every program goroutine has returned (they may
// still be zombies awaiting reaping).
func (s *System) WaitAll() { s.liveProcs.Wait() }

// Printf writes to the simulated serial console.
func (s *System) Printf(format string, args ...any) {
	fmt.Fprintf(s.Console, format, args...)
}

// ConsoleOutput returns everything printed to the console.
func (s *System) ConsoleOutput() string { return s.Machine.Serial.Output() }

// SaveFS snapshots the filesystem (replica 0's copy — all replicas are
// checked identical by the agreement obligation) to the disk. On a
// journaled system this is a checkpoint: the snapshot carries the
// journal sequence stamp and truncates the record area.
func (s *System) SaveFS() error {
	var err error
	s.nr.Replica(0).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		k := d.(*sys.Kernel)
		if s.journal != nil {
			err = s.journal.Checkpoint(k.FS())
			return
		}
		err = fs.Save(k.FS(), s.BlockDev)
	})
	return err
}

// CheckReplicaAgreement syncs every kernel replica and verifies they
// hold identical filesystem and process state — the composed system's
// NR consistency obligation.
func (s *System) CheckReplicaAgreement() error {
	var fss []*fs.FS
	var procCounts []int
	for i := 0; i < s.nr.NumReplicas(); i++ {
		s.nr.Replica(i).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
			k := d.(*sys.Kernel)
			fss = append(fss, k.FS())
			procCounts = append(procCounts, k.Procs().Len())
		})
	}
	for i := 1; i < len(fss); i++ {
		if !fs.Equal(fss[0], fss[i]) {
			return fmt.Errorf("core: replica %d filesystem diverged from replica 0", i)
		}
		if procCounts[i] != procCounts[0] {
			return fmt.Errorf("core: replica %d has %d processes, replica 0 has %d",
				i, procCounts[i], procCounts[0])
		}
	}
	return nil
}

// CheckKernelInvariants runs every replica's structural invariants.
func (s *System) CheckKernelInvariants() error {
	var err error
	for i := 0; i < s.nr.NumReplicas() && err == nil; i++ {
		s.nr.Replica(i).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
			k := d.(*sys.Kernel)
			if e := k.FS().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
				return
			}
			if e := k.Procs().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
				return
			}
			if e := k.RunQueue().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
			}
		})
	}
	return err
}

// registerComponents fills the relwork self-inventory from what Boot
// actually wired up.
func (s *System) registerComponents() {
	r := relwork.NewRegistry()
	r.AddComponent(relwork.Component{Table2Row: "Scheduler", Package: "internal/sched", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Memory management", Package: "internal/mm", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Memory management", Package: "internal/pt", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Filesystem", Package: "internal/fs", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Filesystem", Package: "internal/wal", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Complex drivers", Package: "internal/dev", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Process management", Package: "internal/proc", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Threads and synchronization", Package: "internal/usr", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Network stack", Package: "internal/netstack", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "System libraries", Package: "internal/ulib", Checked: true})
	// Table 1 claims, in the repository's runtime-checked sense.
	r.SetTable1("Kernel memory safety", relwork.Yes)     // Go memory safety + bounds-checked simulated memory
	r.SetTable1("Specification refinement", relwork.Yes) // sm refinement obligations
	r.SetTable1("Security properties", relwork.Partial)  // the paper itself defers isolation (§1)
	r.SetTable1("Multi-processor support", relwork.Yes)  // NR-replicated kernel
	r.SetTable1("Process-centric spec", relwork.Yes)     // §3 contract, checked per syscall
	s.Components = r
}
