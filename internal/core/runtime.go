package core

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
)

// Process is a running user program's handle: its Sys syscall interface
// plus identity. User programs are Go functions — the §3 execution
// model's pragmatic stance ("take a systems programming language and
// assume the OS's abstract model of CPU execution and memory matches
// the language's semantics") applied to Go instead of Rust.
type Process struct {
	Sys  *sys.Sys
	PID  proc.PID
	Core int
	sys  *System
}

// Program is a user program body; its return value is the exit code.
type Program func(p *Process) int

// newHandler allocates a syscall handler pinned to the next core
// (round-robin), registering an NR thread context on that core's
// replica.
func (s *System) newHandler() (*handler, error) {
	s.procMu.Lock()
	core := s.nextCore % s.cfg.Cores
	s.nextCore++
	s.procMu.Unlock()
	if s.sharded() {
		pctx, err := s.procNR.Register(s.replicaOf(core))
		if err != nil {
			return nil, err
		}
		fctx, err := s.fsNR.Register(s.replicaOf(core))
		if err != nil {
			pctx.Deregister()
			return nil, err
		}
		return &handler{s: s, core: core, procCtx: pctx, fsCtx: fctx}, nil
	}
	ctx, err := s.nr.Register(s.replicaOf(core))
	if err != nil {
		return nil, err
	}
	return &handler{s: s, core: core, ctx: ctx}, nil
}

// RawSysOn returns an uncontracted syscall handle for pid whose handler
// is pinned to the given core — benchmark and tooling support for
// explicit NUMA placement. The handle's NR contexts register on
// replicaOf(core), exactly as if the process ran there, and bypass the
// per-descriptor contract checker so each call is one syscall and
// nothing else.
func (s *System) RawSysOn(pid proc.PID, core int) (*sys.Sys, error) {
	if core < 0 || core >= s.cfg.Cores {
		return nil, fmt.Errorf("core %d out of range [0,%d)", core, s.cfg.Cores)
	}
	s.procMu.Lock()
	s.nextCore = core
	s.procMu.Unlock()
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	return sys.NewSys(pid, h), nil
}

// Init returns a Sys handle for the init process (for setup work and
// tests). Contract checking is wired to the handler core's replica.
func (s *System) Init() (*sys.Sys, error) {
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	sh := sys.NewSys(proc.InitPID, h)
	sh.EnableContract(&replicaViewer{s: s, core: h.core})
	return sh, nil
}

// replicaViewer adapts one replica's view() for the contract checker.
// The snapshot syncs the replica to the log tail first, so pre/post
// views bracket the checked syscall exactly.
type replicaViewer struct {
	s    *System
	core int
}

// ViewFDs implements sys.Viewer.
func (v *replicaViewer) ViewFDs(pid proc.PID) (fs.SpecState, bool) {
	var st fs.SpecState
	var ok bool
	s := v.s
	if s.sharded() {
		// Compose the view across shards: descriptors from the PID's
		// process shard, each file's contents from its inode's owner
		// shard. Inspect syncs each shard to its own log tail, so the
		// view brackets the checked syscall's transitions shard by shard.
		rep := s.replicaOf(v.core)
		var snap map[fs.FD]fs.OpenFile
		s.InspectProcShard(s.ProcShardOf(pid), rep, func(k *sys.Kernel) {
			snap, ok = k.SnapshotFDs(pid)
		})
		if !ok {
			return fs.SpecState{}, false
		}
		st.Files = make(map[fs.FD]fs.SpecFile, len(snap))
		for fd, of := range snap {
			var contents []byte
			s.InspectFsShard(s.FsShardOf(of.Ino), rep, func(k *sys.Kernel) {
				contents, _ = k.FS().Contents(of.Ino)
			})
			st.Files[fd] = fs.SpecFile{Contents: contents, Offset: of.Offset, Locked: of.Locked,
				Append: of.Flags&fs.OAppend != 0, Ino: of.Ino}
		}
		return st, true
	}
	s.nr.Replica(s.replicaOf(v.core)).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		st, ok = d.(*sys.Kernel).ViewFDs(pid)
	})
	return st, ok
}

// Run spawns a process as a child of parent and executes prog in its
// own goroutine ("core"). The returned Process is live immediately; use
// parent.Wait to reap it.
func (s *System) Run(parent *sys.Sys, name string, prog Program) (*Process, error) {
	pid, e := parent.Spawn(name)
	if e != sys.EOK {
		return nil, fmt.Errorf("core: spawn %q: %v", name, e)
	}
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	ps := sys.NewSys(pid, h)
	ps.EnableContract(&replicaViewer{s: s, core: h.core})
	p := &Process{Sys: ps, PID: pid, Core: h.core, sys: s}
	s.liveProcs.Add(1)
	go func() {
		defer s.liveProcs.Done()
		code := prog(p)
		// Exit is idempotent-ish: if the program already exited (or was
		// killed), the errno is EPERM and ignored.
		_ = ps.Exit(code)
	}()
	return p, nil
}

// WaitAll blocks until every program goroutine has returned (they may
// still be zombies awaiting reaping).
func (s *System) WaitAll() { s.liveProcs.Wait() }

// Printf writes to the simulated serial console.
func (s *System) Printf(format string, args ...any) {
	fmt.Fprintf(s.Console, format, args...)
}

// ConsoleOutput returns everything printed to the console.
func (s *System) ConsoleOutput() string { return s.Machine.Serial.Output() }

// SaveFS snapshots the filesystem (replica 0's copy — all replicas are
// checked identical by the agreement obligation) to the disk. On a
// journaled system this is a checkpoint: the snapshot carries the
// journal sequence stamp and truncates the record area.
func (s *System) SaveFS() error {
	if s.sharded() {
		if s.walGroup == nil {
			return fmt.Errorf("core: SaveFS needs WAL on a sharded kernel (no single filesystem linearization)")
		}
		// Checkpoint every shard in one coordinator critical section:
		// commit pending records as a round (under nsMu, like Sync),
		// then compact each shard's journal into its snapshot slots.
		s.nsMu.Lock()
		defer s.nsMu.Unlock()
		for i := 0; i < s.NumShards(); i++ {
			s.InspectFsShard(i, 0, func(*sys.Kernel) {})
		}
		return s.walGroup.CheckpointAll()
	}
	var err error
	s.nr.Replica(0).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		k := d.(*sys.Kernel)
		if s.journal != nil {
			err = s.journal.Checkpoint(k.FS())
			return
		}
		err = fs.Save(k.FS(), s.BlockDev)
	})
	return err
}

// CheckReplicaAgreement syncs every kernel replica and verifies they
// hold identical filesystem and process state — the composed system's
// NR consistency obligation.
func (s *System) CheckReplicaAgreement() error {
	if s.sharded() {
		return s.checkShardAgreement()
	}
	var fss []*fs.FS
	var procCounts []int
	for i := 0; i < s.nr.NumReplicas(); i++ {
		s.nr.Replica(i).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
			k := d.(*sys.Kernel)
			fss = append(fss, k.FS())
			procCounts = append(procCounts, k.Procs().Len())
		})
	}
	for i := 1; i < len(fss); i++ {
		if !fs.Equal(fss[0], fss[i]) {
			return fmt.Errorf("core: replica %d filesystem diverged from replica 0", i)
		}
		if procCounts[i] != procCounts[0] {
			return fmt.Errorf("core: replica %d has %d processes, replica 0 has %d",
				i, procCounts[i], procCounts[0])
		}
	}
	return nil
}

// checkShardAgreement is the sharded kernel's consistency obligation:
// within each shard, every replica agrees (the per-shard NR
// requirement); across the filesystem group, every shard holds the
// same namespace (the broadcast-order requirement) while file contents
// live only with their owners.
func (s *System) checkShardAgreement() error {
	n := s.NumShards()
	for i := 0; i < n; i++ {
		var fss []*fs.FS
		var procCounts []int
		for r := 0; r < s.NumReplicas(); r++ {
			s.InspectProcShard(i, r, func(k *sys.Kernel) {
				procCounts = append(procCounts, k.Procs().Len())
			})
			s.InspectFsShard(i, r, func(k *sys.Kernel) {
				fss = append(fss, k.FS())
			})
		}
		for r := 1; r < len(fss); r++ {
			if !fs.Equal(fss[0], fss[r]) {
				return fmt.Errorf("core: fs shard %d replica %d diverged from replica 0", i, r)
			}
		}
		for r := 1; r < len(procCounts); r++ {
			if procCounts[r] != procCounts[0] {
				return fmt.Errorf("core: proc shard %d replica %d has %d processes, replica 0 has %d",
					i, r, procCounts[r], procCounts[0])
			}
		}
	}
	// Cross-shard: the replicated namespace must be identical on every
	// filesystem shard.
	var nss []*fs.FS
	for i := 0; i < n; i++ {
		s.InspectFsShard(i, 0, func(k *sys.Kernel) { nss = append(nss, k.FS()) })
	}
	for i := 1; i < n; i++ {
		if !fs.NamespaceEqual(nss[0], nss[i]) {
			return fmt.Errorf("core: fs shard %d namespace diverged from shard 0", i)
		}
	}
	return nil
}

// CheckKernelInvariants runs every replica's structural invariants.
func (s *System) CheckKernelInvariants() error {
	if s.sharded() {
		for i := 0; i < s.NumShards(); i++ {
			for r := 0; r < s.NumReplicas(); r++ {
				var err error
				check := func(k *sys.Kernel) {
					if e := k.FS().CheckInvariant(); e != nil {
						err = e
						return
					}
					if e := k.Procs().CheckInvariant(); e != nil {
						err = e
						return
					}
					err = k.RunQueue().CheckInvariant()
				}
				s.InspectProcShard(i, r, check)
				if err != nil {
					return fmt.Errorf("proc shard %d replica %d: %w", i, r, err)
				}
				s.InspectFsShard(i, r, check)
				if err != nil {
					return fmt.Errorf("fs shard %d replica %d: %w", i, r, err)
				}
			}
		}
		return nil
	}
	var err error
	for i := 0; i < s.nr.NumReplicas() && err == nil; i++ {
		s.nr.Replica(i).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
			k := d.(*sys.Kernel)
			if e := k.FS().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
				return
			}
			if e := k.Procs().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
				return
			}
			if e := k.RunQueue().CheckInvariant(); e != nil {
				err = fmt.Errorf("replica %d: %w", i, e)
			}
		})
	}
	return err
}

// registerComponents fills the relwork self-inventory from what Boot
// actually wired up.
func (s *System) registerComponents() {
	r := relwork.NewRegistry()
	r.AddComponent(relwork.Component{Table2Row: "Scheduler", Package: "internal/sched", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Memory management", Package: "internal/mm", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Memory management", Package: "internal/pt", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Filesystem", Package: "internal/fs", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Filesystem", Package: "internal/wal", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Filesystem", Package: "internal/walshard", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Complex drivers", Package: "internal/dev", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Process management", Package: "internal/proc", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Threads and synchronization", Package: "internal/usr", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "Network stack", Package: "internal/netstack", Checked: true})
	r.AddComponent(relwork.Component{Table2Row: "System libraries", Package: "internal/ulib", Checked: true})
	// Table 1 claims, in the repository's runtime-checked sense.
	r.SetTable1("Kernel memory safety", relwork.Yes)     // Go memory safety + bounds-checked simulated memory
	r.SetTable1("Specification refinement", relwork.Yes) // sm refinement obligations
	r.SetTable1("Security properties", relwork.Partial)  // the paper itself defers isolation (§1)
	r.SetTable1("Multi-processor support", relwork.Yes)  // NR-replicated kernel
	r.SetTable1("Process-centric spec", relwork.Yes)     // §3 contract, checked per syscall
	s.Components = r
}
