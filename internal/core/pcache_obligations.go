package core

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// The read-path verification conditions compose the page cache with the
// kernel (pcache's own obligations check the epoch protocol in
// isolation):
//
//   - read-mapping-refines-copy: on both the monolithic and the sharded
//     kernel, the zero-copy tier is observationally equivalent to the
//     copying tier — bytes read through a PreadMap mapping equal the
//     bytes a Pread of the same range returns; a mapping taken before a
//     write is a stable snapshot (the write never mutates it in place);
//     and a mapping taken after the write sees the new bytes. The
//     mapping is read-only and unmappable only through PreadUnmap.
//   - pread-refines-sequential-read: Pread over the whole file agrees
//     byte-for-byte with the logged Seek+Read path — the cache never
//     invents, loses, or reorders bytes, in either kernel mode.
func registerPCacheObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "read-mapping-refines-copy", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				if err := readMappingWorkload(r, Config{Cores: 2, MemBytes: 256 << 20}); err != nil {
					return fmt.Errorf("monolithic: %w", err)
				}
				return readMappingWorkload(r, Config{Cores: 4, Shards: 4, MemBytes: 256 << 20})
			}},
		verifier.Obligation{Module: "core", Name: "pread-refines-sequential-read", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				if err := preadAgreementWorkload(r, Config{Cores: 2, MemBytes: 256 << 20}); err != nil {
					return fmt.Errorf("monolithic: %w", err)
				}
				return preadAgreementWorkload(r, Config{Cores: 4, Shards: 4, MemBytes: 256 << 20})
			}},
	)
}

// readMappingWorkload drives one process through the full zero-copy
// lifecycle and checks every refinement step listed above, finishing
// with an exit that still holds a live mapping (the teardown path must
// unpin it rather than free the cache's frame).
func readMappingWorkload(r *rand.Rand, cfg Config) error {
	const fileLen = 3*pcache.PageSize + 713
	s, err := Boot(cfg)
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	contents := make([]byte, fileLen)
	r.Read(contents)
	fd, e := initSys.Open("/zc.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		return fmt.Errorf("open: %v", e)
	}
	if _, e := initSys.Write(fd, contents); e != sys.EOK {
		return fmt.Errorf("write: %v", e)
	}
	if e := initSys.Close(fd); e != sys.EOK {
		return fmt.Errorf("close: %v", e)
	}

	fresh := make([]byte, pcache.PageSize)
	r.Read(fresh)
	errs := make(chan error, 1)
	if _, err := s.Run(initSys, "zcopy", func(p *Process) int {
		errs <- func() error {
			fd, e := p.Sys.Open("/zc.dat", fs.ORdWr)
			if e != sys.EOK {
				return fmt.Errorf("open: %v", e)
			}
			// Copying tier: Pread agrees with the authoritative contents.
			buf := make([]byte, fileLen)
			if n, e := p.Sys.Pread(fd, buf, 0); e != sys.EOK || n != fileLen {
				return fmt.Errorf("pread full: n=%d %v", n, e)
			}
			if !bytes.Equal(buf, contents) {
				return fmt.Errorf("pread bytes diverge from written contents")
			}
			// Zero-copy tier: map page 0 and compare against the copy path.
			va, sz, e := p.Sys.PreadMap(fd, 0)
			if e != sys.EOK {
				return fmt.Errorf("pread_map: %v", e)
			}
			if sz != pcache.PageSize {
				return fmt.Errorf("mapped page valid bytes = %d, want %d", sz, pcache.PageSize)
			}
			mapped := make([]byte, sz)
			if e := p.Sys.MemRead(va, mapped); e != sys.EOK {
				return fmt.Errorf("memread mapping: %v", e)
			}
			if !bytes.Equal(mapped, contents[:pcache.PageSize]) {
				return fmt.Errorf("mapped bytes diverge from pread bytes")
			}
			// The mapping is read-only and not a munmap target.
			if e := p.Sys.MemWrite(va, []byte{1}); e != sys.EFAULT {
				return fmt.Errorf("memwrite through read mapping: %v, want EFAULT", e)
			}
			if e := p.Sys.MUnmap(va); e != sys.EINVAL {
				return fmt.Errorf("munmap of pread mapping: %v, want EINVAL", e)
			}
			// Overwrite page 0 through the logged write path.
			if _, e := p.Sys.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
				return fmt.Errorf("seek: %v", e)
			}
			if _, e := p.Sys.Write(fd, fresh); e != sys.EOK {
				return fmt.Errorf("overwrite: %v", e)
			}
			// The old mapping is a stable snapshot of the pre-write bytes.
			if e := p.Sys.MemRead(va, mapped); e != sys.EOK {
				return fmt.Errorf("memread snapshot: %v", e)
			}
			if !bytes.Equal(mapped, contents[:pcache.PageSize]) {
				return fmt.Errorf("snapshot mutated by a later write")
			}
			// A fresh Pread and a fresh mapping both see the new bytes.
			if n, e := p.Sys.Pread(fd, buf[:pcache.PageSize], 0); e != sys.EOK || n != pcache.PageSize {
				return fmt.Errorf("pread after write: n=%d %v", n, e)
			}
			if !bytes.Equal(buf[:pcache.PageSize], fresh) {
				return fmt.Errorf("pread after write served stale bytes")
			}
			va2, sz2, e := p.Sys.PreadMap(fd, 0)
			if e != sys.EOK || sz2 != pcache.PageSize {
				return fmt.Errorf("pread_map after write: sz=%d %v", sz2, e)
			}
			mapped2 := make([]byte, sz2)
			if e := p.Sys.MemRead(va2, mapped2); e != sys.EOK {
				return fmt.Errorf("memread fresh mapping: %v", e)
			}
			if !bytes.Equal(mapped2, fresh) {
				return fmt.Errorf("fresh mapping served stale bytes")
			}
			// Unmap both; a second unmap of the same VA is EINVAL.
			if e := p.Sys.PreadUnmap(va); e != sys.EOK {
				return fmt.Errorf("pread_unmap old: %v", e)
			}
			if e := p.Sys.PreadUnmap(va); e != sys.EINVAL {
				return fmt.Errorf("double pread_unmap: %v, want EINVAL", e)
			}
			if e := p.Sys.PreadUnmap(va2); e != sys.EOK {
				return fmt.Errorf("pread_unmap fresh: %v", e)
			}
			// Exit while holding a live mapping of page 1: teardown must
			// route the frame back to the cache, not the allocator.
			if _, _, e := p.Sys.PreadMap(fd, pcache.PageSize); e != sys.EOK {
				return fmt.Errorf("pread_map page 1: %v", e)
			}
			return nil
		}()
		return 0
	}); err != nil {
		return err
	}
	if err := <-errs; err != nil {
		return err
	}
	s.WaitAll()
	if _, e := initSys.Wait(); e != sys.EOK {
		return fmt.Errorf("wait: %v", e)
	}
	// The exiting process's mapping must have been unpinned: no cache
	// reports live mappings once every process is gone.
	for i, c := range s.pcaches {
		if _, _, mapped := c.Stats(); mapped != 0 {
			return fmt.Errorf("cache %d still holds %d mappings after exit", i, mapped)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s.CheckKernelInvariants()
}

// preadAgreementWorkload writes a multi-page file, then checks random
// (offset, length) Preads — including page-straddling and beyond-EOF
// shapes — against the logged Seek+Read path byte for byte.
func preadAgreementWorkload(r *rand.Rand, cfg Config) error {
	const fileLen = 5*pcache.PageSize + 119
	s, err := Boot(cfg)
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	contents := make([]byte, fileLen)
	r.Read(contents)
	fd, e := initSys.Open("/agree.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		return fmt.Errorf("open: %v", e)
	}
	if _, e := initSys.Write(fd, contents); e != sys.EOK {
		return fmt.Errorf("write: %v", e)
	}
	for i := 0; i < 40; i++ {
		off := uint64(r.Intn(fileLen + pcache.PageSize)) // may start beyond EOF
		ln := 1 + r.Intn(2*pcache.PageSize)
		pbuf := make([]byte, ln)
		pn, e := initSys.Pread(fd, pbuf, off)
		if e != sys.EOK {
			return fmt.Errorf("pread off=%d len=%d: %v", off, ln, e)
		}
		if _, e := initSys.Seek(fd, int64(off), fs.SeekSet); e != sys.EOK {
			return fmt.Errorf("seek: %v", e)
		}
		rbuf := make([]byte, ln)
		rn, e := initSys.Read(fd, rbuf)
		if e != sys.EOK {
			return fmt.Errorf("read: %v", e)
		}
		if pn != rn || !bytes.Equal(pbuf[:pn], rbuf[:rn]) {
			return fmt.Errorf("pread(off=%d,len=%d) = %d bytes diverges from seek+read = %d bytes", off, ln, pn, rn)
		}
	}
	if e := initSys.Close(fd); e != sys.EOK {
		return fmt.Errorf("close: %v", e)
	}
	if err := initSys.ContractErr(); err != nil {
		return err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s.CheckKernelInvariants()
}
