package core

import (
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// This file implements the syscalls the composition layer serves
// outside the replicated kernel state: raw user-memory access (not a
// kernel-state transition), futexes (they block), and the durability
// transition (a device effect against the one disk). NrOS similarly
// keeps device- and blocking-state per node rather than in the
// replicated structures. Sockets used to live here wholesale; their
// table half is now replicated state (see netops.go) and only the
// interrupt-fed receive path remains device-local.

func (s *System) localOp(h *handler, op sys.WriteOp) sys.Resp {
	switch op.Num {
	case sys.NumMemRead:
		buf := make([]byte, op.Len)
		if e := s.userMem(h.core, op.PID, op.VA, buf, false); e != sys.EOK {
			return sys.Resp{Errno: e}
		}
		return sys.Resp{Errno: sys.EOK, Val: op.Len, Data: buf}

	case sys.NumMemWrite:
		if e := s.userMem(h.core, op.PID, op.VA, op.Data, true); e != sys.EOK {
			return sys.Resp{Errno: e}
		}
		return sys.Resp{Errno: sys.EOK, Val: uint64(len(op.Data))}

	case sys.NumMemCAS:
		return s.memCAS(h, op)

	case sys.NumFutexWait:
		return s.futexWait(h, op)

	case sys.NumFutexWake:
		return s.futexWake(op)

	case sys.NumSync:
		// The durability transition (§3 contract extended with crash
		// consistency): one journal group commit — or a full snapshot
		// without a journal. Local because the disk is a device, not
		// replicated state; replica ordering comes from the flush
		// running under replica 0's Inspect (see syncDurable). On a
		// sharded kernel with WAL this is a cross-shard group-commit
		// round (internal/walshard); sharded without WAL there is no
		// journal to cut consistently across the shard logs — explicit
		// ENOSYS rather than a sync that silently covers only part of
		// the state.
		if s.sharded() && s.walGroup == nil {
			return sys.Resp{Errno: sys.ENOSYS}
		}
		if err := s.syncDurable(); err != nil {
			return sys.Resp{Errno: sys.EIO}
		}
		return sys.Resp{Errno: sys.EOK}
	}
	return sys.Resp{Errno: sys.ENOSYS}
}

// userMem accesses process memory through the calling core's replica,
// under the replica's read lock so the page tables are stable. On a
// sharded kernel the page tables live on the PID's process shard.
func (s *System) userMem(core int, pid proc.PID, va mmu.VAddr, p []byte, write bool) sys.Errno {
	e := sys.EFAULT
	access := func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		k := d.(*sys.Kernel)
		if write {
			e = k.UserWrite(pid, va, p)
		} else {
			e = k.UserRead(pid, va, p)
		}
	}
	if s.sharded() {
		s.procNR.Shard(s.ProcShardOf(pid)).Replica(s.replicaOf(core)).Inspect(access)
		return e
	}
	s.nr.Replica(s.replicaOf(core)).Inspect(access)
	return e
}

// memCAS implements the atomic compare-and-swap "instruction" on a
// 32-bit user word. Atomicity with respect to other memCAS and
// futexWait value checks is provided by futexMu — the same serialization
// point the kernel futex uses, so the userspace mutex protocol composes
// correctly with FUTEX_WAIT.
func (s *System) memCAS(h *handler, op sys.WriteOp) sys.Resp {
	s.futexMu.Lock()
	defer s.futexMu.Unlock()
	var word [4]byte
	if e := s.userMem(h.core, op.PID, op.VA, word[:], false); e != sys.EOK {
		return sys.Resp{Errno: e}
	}
	cur := uint32(word[0]) | uint32(word[1])<<8 | uint32(word[2])<<16 | uint32(word[3])<<24
	swapped := false
	if cur == op.Word {
		nv := uint32(op.Len)
		nw := [4]byte{byte(nv), byte(nv >> 8), byte(nv >> 16), byte(nv >> 24)}
		if e := s.userMem(h.core, op.PID, op.VA, nw[:], true); e != sys.EOK {
			return sys.Resp{Errno: e}
		}
		swapped = true
	}
	return sys.Resp{Errno: sys.EOK, Val: uint64(cur), SigOK: swapped}
}

// futexWait implements FUTEX_WAIT: the value check and the enqueue are
// atomic with respect to futexWake (both hold futexMu), eliminating
// lost wakeups — the property the usr.Mutex protocol depends on.
func (s *System) futexWait(h *handler, op sys.WriteOp) sys.Resp {
	key := futexKey{pid: op.PID, va: op.VA}
	s.futexMu.Lock()
	var word [4]byte
	if e := s.userMem(h.core, op.PID, op.VA, word[:], false); e != sys.EOK {
		s.futexMu.Unlock()
		return sys.Resp{Errno: e}
	}
	cur := uint32(word[0]) | uint32(word[1])<<8 | uint32(word[2])<<16 | uint32(word[3])<<24
	if cur != op.Word {
		s.futexMu.Unlock()
		return sys.Resp{Errno: sys.EAGAIN}
	}
	ch := make(chan struct{})
	s.futexQ[key] = append(s.futexQ[key], ch)
	s.futexMu.Unlock()
	<-ch
	return sys.Resp{Errno: sys.EOK}
}

// futexWake implements FUTEX_WAKE, returning the number woken.
func (s *System) futexWake(op sys.WriteOp) sys.Resp {
	key := futexKey{pid: op.PID, va: op.VA}
	n := op.Len
	if n == 0 {
		n = 1
	}
	s.futexMu.Lock()
	q := s.futexQ[key]
	woken := uint64(0)
	for woken < n && len(q) > 0 {
		close(q[0])
		q = q[1:]
		woken++
	}
	if len(q) == 0 {
		delete(s.futexQ, key)
	} else {
		s.futexQ[key] = q
	}
	s.futexMu.Unlock()
	return sys.Resp{Errno: sys.EOK, Val: woken}
}
