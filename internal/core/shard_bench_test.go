package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// BenchmarkShardScaling measures read-heavy syscall throughput of the
// sharded kernel against the single-NR monolith, in the configuration
// NR-based kernels care about: readers on one NUMA node, writers on
// another. Eight reader processes issue MemResolve (a read op against
// their process shard) from node-1 cores while two writer processes
// churn Seek (a logged write op) from node-0 cores.
//
// On the monolithic kernel every write lands in the one shared log, so
// every node-1 reader must sync its replica past every writer's entries
// — and the readers serialize on that replica's combiner to do it. On
// the sharded kernel only readers co-sharded with a writer pay that
// sync; the rest stay on the read fast path (one RLock, no log work).
// Each benchmark op is exactly one NR read in both modes; b.N counts
// reader ops only.
//
//	go test ./internal/core/ -run - -bench ShardScaling
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		name := fmt.Sprintf("shards=%d", shards)
		b.Run(name, func(b *testing.B) { benchShardWorkload(b, shards) })
	}
}

const (
	benchReaders = 8
	benchWriters = 2
)

// benchShardWorkload runs the workload; shards==1 boots the monolithic
// single-NR kernel (the baseline the speedup is measured against).
func benchShardWorkload(b *testing.B, shards int) {
	// The machine simulates cores as goroutines; giving the runtime one
	// OS thread per simulated core makes cross-core synchronization cost
	// real wall-clock time (combiner hand-offs, reader/combiner convoys)
	// instead of being hidden by cooperative single-thread scheduling.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2 * CoresPerNode))
	// 28 cores = 2 NUMA nodes of CoresPerNode=14 → 2 kernel replicas.
	cfg := Config{Cores: 2 * CoresPerNode, MemBytes: 256 << 20}
	if shards > 1 {
		cfg.Shards = shards
	}
	s, err := Boot(cfg)
	if err != nil {
		b.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		b.Fatal(err)
	}
	// Spawn a pool of candidate processes, then pick reader PIDs so every
	// shard is covered (a shard whose log grows but is never read from
	// node 1 would let writer backlog accumulate unboundedly) and writer
	// PIDs from whatever is left. In the monolith the choice is
	// invisible: all PIDs hit the same NR instance.
	const pool = 4 * benchReaders
	pids := make([]proc.PID, pool)
	for i := range pids {
		pid, e := initSys.Spawn(fmt.Sprintf("bench%d", i))
		if e != sys.EOK {
			b.Fatalf("spawn: %v", e)
		}
		pids[i] = pid
	}
	var readers, writers []proc.PID
	if shards > 1 {
		perShard := make(map[int][]proc.PID)
		for _, pid := range pids {
			sh := s.ProcShardOf(pid)
			perShard[sh] = append(perShard[sh], pid)
		}
		for sh := 0; sh < shards && len(readers) < benchReaders; sh++ {
			want := benchReaders / shards
			if len(perShard[sh]) < want {
				want = len(perShard[sh])
			}
			readers = append(readers, perShard[sh][:want]...)
			perShard[sh] = perShard[sh][want:]
		}
		for _, pid := range pids {
			if len(writers) == benchWriters {
				break
			}
			used := false
			for _, r := range readers {
				if r == pid {
					used = true
					break
				}
			}
			if !used {
				writers = append(writers, pid)
			}
		}
	} else {
		readers = pids[:benchReaders]
		writers = pids[benchReaders : benchReaders+benchWriters]
	}
	if len(readers) != benchReaders || len(writers) != benchWriters {
		b.Fatalf("role assignment: %d readers, %d writers", len(readers), len(writers))
	}

	// Writers on node-0 cores (replica 0), readers on node-1 cores
	// (replica 1). Handles are raw (no contract checker) so each loop
	// iteration is exactly one syscall.
	type wrk struct {
		sys *sys.Sys
		fd  fs.FD
	}
	ws := make([]wrk, benchWriters)
	for i, pid := range writers {
		S, err := s.RawSysOn(pid, 1+i)
		if err != nil {
			b.Fatal(err)
		}
		fd, e := S.Open(fmt.Sprintf("/churn%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			b.Fatalf("writer open: %v", e)
		}
		ws[i] = wrk{sys: S, fd: fd}
	}
	type rdr struct {
		sys  *sys.Sys
		base mmu.VAddr
	}
	rs := make([]rdr, benchReaders)
	for i, pid := range readers {
		S, err := s.RawSysOn(pid, CoresPerNode+i)
		if err != nil {
			b.Fatal(err)
		}
		base, e := S.MMap(4096)
		if e != sys.EOK {
			b.Fatalf("reader mmap: %v", e)
		}
		rs[i] = rdr{sys: S, base: base}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.LockOSThread() // one OS thread per simulated core
			defer runtime.UnlockOSThread()
			for !stop.Load() {
				if _, e := w.sys.Seek(w.fd, 0, fs.SeekSet); e != sys.EOK {
					b.Errorf("writer seek: %v", e)
					return
				}
			}
		}()
	}
	// Work-stealing read loop: readers claim ops from a shared counter
	// until b.N are done, so aggregate throughput is measured rather
	// than the slowest reader's fixed share.
	var claimed atomic.Int64
	total := int64(b.N)
	errs := make(chan error, benchReaders)
	b.ResetTimer()
	for _, r := range rs {
		r := r
		go func() {
			runtime.LockOSThread() // one OS thread per simulated core
			defer runtime.UnlockOSThread()
			for claimed.Add(1) <= total {
				if _, e := r.sys.MemResolve(r.base); e != sys.EOK {
					errs <- fmt.Errorf("memresolve: %v", e)
					return
				}
			}
			errs <- nil
		}()
	}
	for range rs {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
