package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// BenchmarkShardScaling measures read-heavy syscall throughput in the
// configuration NR-based kernels care about: readers on one NUMA node,
// writers on another. Eight reader processes stream 256-byte reads from
// their own warm files while two writer processes churn 2KB Writes (fat
// logged ops), paced at one churn write per four reads so every variant
// applies the identical write stream per measured read.
//
// Two read paths are measured:
//
//   - logged: Read through the operation log — every read is appended,
//     combined, and applied on every replica, so reads serialize with
//     the churn stream. This is the only read path a bare single-NR
//     kernel offers for file bytes, and the baseline the speedup is
//     quoted against.
//   - pread: the page-cache path. A cache-hit pread costs one
//     replica-local descriptor resolve (NumFDGet via ExecuteRead) plus a
//     lock-free epoch-pinned copy — it never takes the combiner for file
//     bytes, and on the sharded kernel the churn's bulk data applies
//     land on the writers' filesystem shards, which the hit path never
//     touches.
//
// The headline ratio is pread/shards=4 over logged/shards=1: the
// per-read cost of the sharded snapshot read path against reads through
// a single shared log. pread/shards=1 isolates how much of that is the
// cache alone; logged/shards=4 shows sharding without the cache does not
// rescue logged reads (they still cross a combiner). On a multi-core
// host the pread shards=1→4 spread additionally reflects parallel
// scaling; on a single-CPU host it only reflects per-op overhead, since
// apply work is conserved across modes by the log's ring-full forcing.
//
//	go test ./internal/core/ -run - -bench ShardScaling
func BenchmarkShardScaling(b *testing.B) {
	for _, bc := range []struct {
		path   string
		shards int
	}{
		{"logged", 1},
		{"logged", 4},
		{"pread", 1},
		{"pread", 2},
		{"pread", 4},
	} {
		name := fmt.Sprintf("%s/shards=%d", bc.path, bc.shards)
		b.Run(name, func(b *testing.B) { benchShardWorkload(b, bc.shards, bc.path == "logged") })
	}
}

const (
	benchReaders = 8
	benchWriters = 2
)

// benchShardWorkload runs the workload; shards==1 boots the monolithic
// single-NR kernel. logged selects Read-through-the-log over Pread.
func benchShardWorkload(b *testing.B, shards int, logged bool) {
	// The machine simulates cores as goroutines; giving the runtime one
	// OS thread per simulated core makes cross-core synchronization cost
	// real wall-clock time (combiner hand-offs, reader/combiner convoys)
	// instead of being hidden by cooperative single-thread scheduling.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2 * CoresPerNode))
	// 28 cores = 2 NUMA nodes of CoresPerNode=14 → 2 kernel replicas.
	cfg := Config{Cores: 2 * CoresPerNode, MemBytes: 256 << 20}
	if shards > 1 {
		cfg.Shards = shards
	}
	s, err := Boot(cfg)
	if err != nil {
		b.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		b.Fatal(err)
	}
	// Spawn a pool of candidate processes, then pick reader PIDs so every
	// shard is covered (a shard whose log grows but is never read from
	// node 1 would let writer backlog accumulate unboundedly) and writer
	// PIDs from whatever is left. In the monolith the choice is
	// invisible: all PIDs hit the same NR instance.
	const pool = 4 * benchReaders
	pids := make([]proc.PID, pool)
	for i := range pids {
		pid, e := initSys.Spawn(fmt.Sprintf("bench%d", i))
		if e != sys.EOK {
			b.Fatalf("spawn: %v", e)
		}
		pids[i] = pid
	}
	var readers, writers []proc.PID
	if shards > 1 {
		perShard := make(map[int][]proc.PID)
		for _, pid := range pids {
			sh := s.ProcShardOf(pid)
			perShard[sh] = append(perShard[sh], pid)
		}
		for sh := 0; sh < shards && len(readers) < benchReaders; sh++ {
			want := benchReaders / shards
			if len(perShard[sh]) < want {
				want = len(perShard[sh])
			}
			readers = append(readers, perShard[sh][:want]...)
			perShard[sh] = perShard[sh][want:]
		}
		for _, pid := range pids {
			if len(writers) == benchWriters {
				break
			}
			used := false
			for _, r := range readers {
				if r == pid {
					used = true
					break
				}
			}
			if !used {
				writers = append(writers, pid)
			}
		}
	} else {
		readers = pids[:benchReaders]
		writers = pids[benchReaders : benchReaders+benchWriters]
	}
	if len(readers) != benchReaders || len(writers) != benchWriters {
		b.Fatalf("role assignment: %d readers, %d writers", len(readers), len(writers))
	}

	// Writers on node-0 cores (replica 0), readers on node-1 cores
	// (replica 1). Handles are raw (no contract checker) so each loop
	// iteration is exactly one syscall.
	type wrk struct {
		sys *sys.Sys
		fd  fs.FD
	}
	churn := bytes.Repeat([]byte{0xC5}, 2048)
	ws := make([]wrk, benchWriters)
	for i, pid := range writers {
		S, err := s.RawSysOn(pid, 1+i)
		if err != nil {
			b.Fatal(err)
		}
		fd, e := S.Open(fmt.Sprintf("/churn%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			b.Fatalf("writer open: %v", e)
		}
		ws[i] = wrk{sys: S, fd: fd}
	}
	type rdr struct {
		sys *sys.Sys
		fd  fs.FD
		buf []byte
	}
	hot := bytes.Repeat([]byte{0x7E}, pcache.PageSize)
	rs := make([]rdr, benchReaders)
	for i, pid := range readers {
		S, err := s.RawSysOn(pid, CoresPerNode+i)
		if err != nil {
			b.Fatal(err)
		}
		fd, e := S.Open(fmt.Sprintf("/hot%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			b.Fatalf("reader open: %v", e)
		}
		if _, e := S.Write(fd, hot); e != sys.EOK {
			b.Fatalf("reader write: %v", e)
		}
		if _, e := S.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
			b.Fatalf("reader seek: %v", e)
		}
		rs[i] = rdr{sys: S, fd: fd, buf: make([]byte, 256)}
		// Warm the cache: the first pread fills the whole page, the timed
		// loop hits.
		if n, e := S.Pread(fd, rs[i].buf, 0); e != sys.EOK || n != uint64(len(rs[i].buf)) {
			b.Fatalf("reader warmup pread: n=%d %v", n, e)
		}
	}

	// Churn is paced to reader progress — one churn write per
	// churnEvery claimed reads, arbitrated by CAS on churned — so every
	// variant applies the identical write stream per measured read and
	// the comparison is timing-independent.
	const churnEvery = 4
	var stop atomic.Bool
	var claimed, churned atomic.Int64
	var wg sync.WaitGroup
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.LockOSThread() // one OS thread per simulated core
			defer runtime.UnlockOSThread()
			for !stop.Load() {
				k := churned.Load()
				if claimed.Load() < (k+1)*churnEvery || !churned.CompareAndSwap(k, k+1) {
					runtime.Gosched()
					continue
				}
				if _, e := w.sys.Seek(w.fd, 0, fs.SeekSet); e != sys.EOK {
					b.Errorf("writer seek: %v", e)
					return
				}
				if _, e := w.sys.Write(w.fd, churn); e != sys.EOK {
					b.Errorf("writer write: %v", e)
					return
				}
			}
		}()
	}
	// Work-stealing read loop: readers claim ops from a shared counter
	// until b.N are done, so aggregate throughput is measured rather
	// than the slowest reader's fixed share.
	total := int64(b.N)
	errs := make(chan error, benchReaders)
	b.ResetTimer()
	for _, r := range rs {
		r := r
		go func() {
			runtime.LockOSThread() // one OS thread per simulated core
			defer runtime.UnlockOSThread()
			for claimed.Add(1) <= total {
				if logged {
					// Sequential 256-byte reads through the log; rewind at
					// EOF (one Seek per 16 reads of the page-sized file).
					n, e := r.sys.Read(r.fd, r.buf)
					if e != sys.EOK {
						errs <- fmt.Errorf("read: %v", e)
						return
					}
					if n < uint64(len(r.buf)) {
						if _, e := r.sys.Seek(r.fd, 0, fs.SeekSet); e != sys.EOK {
							errs <- fmt.Errorf("rewind: %v", e)
							return
						}
					}
				} else if n, e := r.sys.Pread(r.fd, r.buf, 0); e != sys.EOK || n != uint64(len(r.buf)) {
					errs <- fmt.Errorf("pread: n=%d %v", n, e)
					return
				}
			}
			errs <- nil
		}()
	}
	for range rs {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
