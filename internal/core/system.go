// Package core composes the full simulated operating system — the
// paper's "verified NrOS" (§4): the hardware platform, the NR-replicated
// kernel state machine (one sys.Kernel replica per simulated NUMA
// node), device drivers, the network stack, futexes, and the process
// runtime that executes user programs against the §3 client application
// contract.
package core

import (
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/dev"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
)

// CoresPerNode is the simulated NUMA topology: how many cores share one
// kernel replica (the paper's testbed has 14 cores per node).
const CoresPerNode = 14

// Config sizes a system.
type Config struct {
	// Cores is the number of simulated cores (default 2).
	Cores int
	// Replicas overrides the kernel replica count (default derived
	// from Cores via CoresPerNode).
	Replicas int
	// MemBytes is physical memory (default 512 MiB).
	MemBytes mem.PAddr
	// DiskBlocks sizes the disk (default 1<<16 blocks).
	DiskBlocks uint64
	// NICAddr is this machine's network address.
	NICAddr uint64
	// Network, if non-nil, attaches the machine to a virtual switch.
	Network *netstack.Network
	// RestoreFS loads the filesystem from disk at boot (each replica
	// deserializes the same snapshot, keeping them bit-identical).
	RestoreFS bool
	// BootDisk, if non-nil, is copied onto the machine's disk before
	// boot ("inserting" an existing disk image).
	BootDisk fs.BlockStore
}

// System is a booted instance of the OS.
type System struct {
	cfg     Config
	Machine *machine.Machine

	// The replicated kernel.
	nr       *nr.NR[sys.ReadOp, sys.WriteOp, sys.Resp]
	replicas []*sys.Kernel

	// Shared data-frame allocator (physical pages for user memory).
	dataMu    sync.Mutex
	dataAlloc *mm.Buddy

	// Devices.
	Dispatcher *dev.Dispatcher
	Console    *dev.Console
	BlockDev   *dev.BlockDriver
	NICDrv     *dev.NICDriver
	TimerDrv   *dev.TimerDriver
	Net        *netstack.Stack

	// Futex wait queues, keyed per process and word address.
	futexMu sync.Mutex
	futexQ  map[futexKey][]chan struct{}

	// Per-process sockets.
	sockMu   sync.Mutex
	sockets  map[proc.PID]map[uint64]*netstack.Socket
	nextSock uint64

	// Process bookkeeping.
	procMu    sync.Mutex
	nextCore  int
	liveProcs sync.WaitGroup

	// Components is the self-inventory behind Table 1/2's vnros column.
	Components *relwork.Registry
}

type futexKey struct {
	pid proc.PID
	va  mmu.VAddr
}

// Physical memory layout carved at boot.
const (
	bounceBase    = mem.PAddr(0x4000)    // block-driver DMA bounce
	tableRegion   = mem.PAddr(16 << 20)  // page-table frames start
	tableSpan     = mem.PAddr(16 << 20)  // per replica
	dataRegionOff = mem.PAddr(128 << 20) // user data frames start
)

// Boot builds and starts a system.
func Boot(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1 + (cfg.Cores-1)/CoresPerNode
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 512 << 20
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 16
	}
	if cfg.NICAddr == 0 {
		cfg.NICAddr = 0x02_00_00_00_00_01
	}
	if dataRegionOff+((64)<<20) > cfg.MemBytes {
		return nil, fmt.Errorf("core: need at least %d MiB of memory", (dataRegionOff+(64<<20))>>20)
	}

	m := machine.New(machine.Config{
		Cores:      cfg.Cores,
		MemBytes:   cfg.MemBytes,
		DiskBlocks: cfg.DiskBlocks,
		NICAddr:    cfg.NICAddr,
	})
	s := &System{
		cfg:     cfg,
		Machine: m,
		futexQ:  make(map[futexKey][]chan struct{}),
		sockets: make(map[proc.PID]map[uint64]*netstack.Socket),
	}

	// Devices.
	s.Dispatcher = dev.NewDispatcher(m.IC)
	s.Console = dev.NewConsole(m.Serial)
	var err error
	if s.BlockDev, err = dev.NewBlockDriver(m.Disk, m.Mem, bounceBase); err != nil {
		return nil, err
	}
	if s.NICDrv, err = dev.NewNICDriver(m.NIC, s.Dispatcher); err != nil {
		return nil, err
	}
	if s.TimerDrv, err = dev.NewTimerDriver(m.Timer, s.Dispatcher); err != nil {
		return nil, err
	}
	if cfg.Network != nil {
		cfg.Network.Attach(m.NIC)
	}
	s.Net = netstack.NewStack(s.NICDrv)
	// The NIC interrupt path must run; poll from a dedicated pump when
	// frames arrive. In this simulation, delivery raises the IRQ
	// synchronously, so polling after attach suffices; the runtime also
	// polls on every syscall (see handler).

	// Shared data-frame allocator.
	dataFrames := uint64(cfg.MemBytes-dataRegionOff) / mem.PageSize
	if s.dataAlloc, err = mm.NewBuddy(m.Mem, dataRegionOff, dataFrames); err != nil {
		return nil, err
	}

	// "Insert" a pre-existing disk image, if provided.
	if cfg.BootDisk != nil {
		buf := make([]byte, cfg.BootDisk.BlockSize())
		for i := uint64(0); i < cfg.BootDisk.NumBlocks() && i < s.BlockDev.NumBlocks(); i++ {
			if err := cfg.BootDisk.ReadBlock(i, buf); err != nil {
				return nil, err
			}
			if err := s.BlockDev.WriteBlock(i, buf); err != nil {
				return nil, err
			}
		}
	}

	// Optional boot-time filesystem restore, shared by the replica
	// constructor below.
	var bootFS func() *fs.FS
	if cfg.RestoreFS {
		bootFS = func() *fs.FS {
			f, err := fs.Load(s.BlockDev)
			if err != nil {
				return fs.New() // fresh disk: empty root
			}
			return f
		}
	}

	// The replicated kernel: one replica per NUMA node, page-table
	// frames from disjoint per-replica regions so replicas never alias
	// each other's table memory.
	replicaIdx := 0
	s.nr = nr.New(nr.Options{Replicas: cfg.Replicas},
		func() nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp] {
			base := tableRegion + mem.PAddr(replicaIdx)*tableSpan
			replicaIdx++
			src := pt.NewSimpleFrameSource(m.Mem, base, base+tableSpan)
			var k *sys.Kernel
			if bootFS != nil {
				k = sys.NewKernelWithFS(m.Mem, src, bootFS())
			} else {
				k = sys.NewKernel(m.Mem, src)
			}
			s.replicas = append(s.replicas, k)
			return k
		})

	s.registerComponents()
	return s, nil
}

// replicaOf maps a core to its kernel replica index.
func (s *System) replicaOf(core int) int {
	r := core / CoresPerNode
	if r >= s.nr.NumReplicas() {
		r = s.nr.NumReplicas() - 1
	}
	return r
}

// NumReplicas returns the kernel replica count.
func (s *System) NumReplicas() int { return s.nr.NumReplicas() }

// allocDataFrames grabs n zeroed user-data frames from the shared pool.
func (s *System) allocDataFrames(n uint64) ([]mem.PAddr, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	out := make([]mem.PAddr, 0, n)
	for i := uint64(0); i < n; i++ {
		f, err := s.dataAlloc.AllocOrder(0)
		if err != nil {
			for _, g := range out {
				_ = s.dataAlloc.Free(g)
			}
			return nil, err
		}
		if err := s.Machine.Mem.ZeroFrame(f); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// freeDataFrames returns frames to the shared pool.
func (s *System) freeDataFrames(frames []mem.PAddr) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	for _, f := range frames {
		_ = s.dataAlloc.Free(f)
	}
}

// handler is the per-process syscall entry: it owns the process's NR
// thread context (each process is pinned to a core, each core to a
// replica, as in NrOS).
type handler struct {
	s    *System
	core int
	// ctxMu serializes use of the NR thread context: an asynchronous
	// batch submission (Sys.Submit) crosses the boundary from its own
	// goroutine, so a process's batch and its scalar syscalls can arrive
	// concurrently on the same handler. Local ops (futex, sockets, raw
	// memory) stay outside the mutex — FutexWait blocks, and holding
	// ctxMu across it would deadlock the process's other traffic.
	ctxMu sync.Mutex
	ctx   *nr.ThreadContext[sys.ReadOp, sys.WriteOp, sys.Resp]
}

func (h *handler) execute(op sys.WriteOp) sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.Execute(op)
}

func (h *handler) executeRead(op sys.ReadOp) sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.ExecuteRead(op)
}

func (h *handler) executeBatch(ops []sys.WriteOp) []sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.ExecuteBatch(ops)
}

// Syscall implements sys.Handler: the kernel side of the boundary. It
// wraps the dispatch in the kstat probe — one count + latency sample
// per syscall, indexed by opcode and striped by core.
func (h *handler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	t0 := obs.Start()
	ret, out := h.syscall(frame, payload)
	obs.Syscalls.Observe(frame.Num, uint32(h.core), t0)
	obs.KernelTrace.Emit(obs.KindSyscall, frame.Num, uint64(h.core))
	return ret, out
}

// syscall is the uninstrumented dispatch body.
func (h *handler) syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	s := h.s
	// Drain pending device interrupts before entering the kernel proper
	// (the simulation's interrupt delivery point). All cores are
	// drained: the interrupt controller load-balances lines round-robin
	// and an idle core's pending queue would otherwise starve.
	for c := 0; c < s.cfg.Cores; c++ {
		s.Dispatcher.Poll(c)
	}

	if frame.Num == sys.NumBatch {
		return h.batch(frame, payload)
	}
	if sys.IsReadOp(frame.Num) {
		op, err := sys.DecodeRead(frame, payload)
		if err != nil {
			return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
		}
		return sys.EncodeResp(h.executeRead(op))
	}
	op, err := sys.DecodeWrite(frame, payload)
	if err != nil {
		return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
	}
	if sys.IsLocalOp(op.Num) {
		return sys.EncodeResp(s.localOp(h, op))
	}

	// mmap: attach data frames from the shared pool before logging, so
	// every replica maps the same physical pages.
	if op.Num == sys.NumMMap {
		if op.Size == 0 || op.Size%mmu.L1PageSize != 0 {
			return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
		}
		frames, err := s.allocDataFrames(op.Size / mmu.L1PageSize)
		if err != nil {
			return sys.EncodeResp(sys.Resp{Errno: sys.ENOMEM})
		}
		op.Frames = frames
		resp := h.execute(op)
		if resp.Errno != sys.EOK {
			s.freeDataFrames(frames)
		}
		return sys.EncodeResp(resp)
	}

	resp := h.execute(op)
	// munmap/exit return the data frames they released; give them back
	// to the shared pool exactly once (here, on the calling path).
	if resp.Errno == sys.EOK && len(resp.Freed) > 0 {
		s.freeDataFrames(resp.Freed)
	}
	if op.Num == sys.NumExit && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.PID)
	}
	if op.Num == sys.NumKill && op.Sig == proc.SIGKILL && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.Target)
	}
	return sys.EncodeResp(resp)
}

// batch drains one submission-queue vector through a single NR combiner
// round: decode, fence off anything non-batchable, one ExecuteBatch
// (one log reservation for the whole run), and reassemble the
// completion queue in submission order. Non-batchable ops complete
// individually with ENOSYS — a bad entry must not poison its
// neighbours' completions.
func (h *handler) batch(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	t0 := obs.Start()
	ops, err := sys.DecodeBatch(frame, payload)
	if err != nil {
		return sys.EncodeBatchResp(nil, sys.EINVAL)
	}
	comps := make([]sys.Completion, len(ops))
	batchable := 0
	for i := range ops {
		if sys.IsBatchableOp(ops[i].Num) {
			batchable++
		}
	}
	switch {
	case batchable == len(ops):
		// Fast path: the whole vector rides the combiner as-is.
		for j, r := range h.executeBatch(ops) {
			comps[j] = sys.BatchCompletion(ops[j], r)
		}
	case batchable > 0:
		// Non-batchable ops complete individually with ENOSYS; the rest
		// still cross as one contiguous run, merged back in order.
		valid := make([]sys.WriteOp, 0, batchable)
		idx := make([]int, 0, batchable)
		for i := range ops {
			if !sys.IsBatchableOp(ops[i].Num) {
				comps[i] = sys.Completion{Op: ops[i].Num, Errno: sys.ENOSYS}
				continue
			}
			valid = append(valid, ops[i])
			idx = append(idx, i)
		}
		for j, r := range h.executeBatch(valid) {
			comps[idx[j]] = sys.BatchCompletion(valid[j], r)
		}
	default:
		for i := range ops {
			comps[i] = sys.Completion{Op: ops[i].Num, Errno: sys.ENOSYS}
		}
	}
	obs.SyscallBatchSize.Record(uint32(h.core), uint64(len(ops)))
	obs.SyscallBatchLatency.Since(uint32(h.core), t0)
	obs.KernelTrace.Emit(obs.KindBatch, uint64(len(ops)), uint64(h.core))
	return sys.EncodeBatchResp(comps, sys.EOK)
}

// cleanupProcessLocal tears down core-side state (sockets, futexes).
func (s *System) cleanupProcessLocal(pid proc.PID) {
	s.sockMu.Lock()
	for _, sock := range s.sockets[pid] {
		_ = sock.Close()
	}
	delete(s.sockets, pid)
	s.sockMu.Unlock()

	s.futexMu.Lock()
	for k, q := range s.futexQ {
		if k.pid == pid {
			for _, ch := range q {
				close(ch)
			}
			delete(s.futexQ, k)
		}
	}
	s.futexMu.Unlock()
}
