// Package core composes the full simulated operating system — the
// paper's "verified NrOS" (§4): the hardware platform, the NR-replicated
// kernel state machine (one sys.Kernel replica per simulated NUMA
// node), device drivers, the network stack, futexes, and the process
// runtime that executes user programs against the §3 client application
// contract.
package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/dev"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/wal"
	"github.com/verified-os/vnros/internal/walshard"
)

// CoresPerNode is the simulated NUMA topology: how many cores share one
// kernel replica (the paper's testbed has 14 cores per node).
const CoresPerNode = 14

// Config sizes a system.
type Config struct {
	// Cores is the number of simulated cores (default 2).
	Cores int
	// Replicas overrides the kernel replica count (default derived
	// from Cores via CoresPerNode).
	Replicas int
	// MemBytes is physical memory (default 512 MiB).
	MemBytes mem.PAddr
	// DiskBlocks sizes the disk (default 1<<16 blocks).
	DiskBlocks uint64
	// NICAddr is this machine's network address.
	NICAddr uint64
	// Network, if non-nil, attaches the machine to a virtual switch.
	Network *netstack.Network
	// RestoreFS loads the filesystem from disk at boot (each replica
	// deserializes the same snapshot, keeping them bit-identical). With
	// WAL set, boot additionally replays the journal's record tail, so
	// the replicas recover everything acknowledged by a Sync — not just
	// the last explicit snapshot.
	RestoreFS bool
	// BootDisk, if non-nil, is copied onto the machine's disk before
	// boot ("inserting" an existing disk image).
	BootDisk fs.BlockStore
	// WAL enables the write-ahead journal (internal/wal): filesystem
	// mutations stream into a group-committed record log, Sync becomes
	// a journal flush instead of a full snapshot, and boot recovery
	// replays the log over the last checkpoint.
	WAL bool
	// JournalBlocks overrides the journal region size in blocks
	// (default: 1/8 of the disk).
	JournalBlocks uint64
	// Shards partitions the kernel state machine across multiple NR
	// instances with independent logs (§4.1): Shards process-state
	// shards keyed by PID (descriptor tables, address spaces, the
	// process tree pinned to shard 0) plus Shards filesystem shards
	// keyed by inode (namespace replicated on every shard, file
	// contents on the owner). 0 or 1 boots the monolithic single-NR
	// kernel.
	//
	// With WAL set, each fs shard gets its own journal region over the
	// disk and Sync becomes a cross-shard group commit
	// (internal/walshard): prepare chunks on every participating shard,
	// then one commit stamp, so recovery always observes a consistent
	// cross-shard cut. JournalBlocks then sizes each shard's journal
	// within its region. RestoreFS on a sharded system requires WAL —
	// the per-shard journal regions are the on-disk format; there is no
	// sharded restore from a monolithic snapshot.
	Shards int
	// ShardLogSize overrides each shard's log ring size (0 = the NR
	// default). Each shard enforces its own half-ring invariant, so
	// MaxBatchOps is per shard: ShardLogSize/(2*MaxThreadsPerReplica).
	ShardLogSize int
}

// System is a booted instance of the OS.
type System struct {
	cfg     Config
	Machine *machine.Machine

	// The replicated kernel (monolithic mode: Config.Shards <= 1).
	nr       *nr.NR[sys.ReadOp, sys.WriteOp, sys.Resp]
	replicas []*sys.Kernel

	// The sharded kernel (Config.Shards > 1): two shard groups over
	// independent logs — process state keyed by PID, filesystem state
	// keyed by inode. nil in monolithic mode; see shard_router.go.
	procNR *nr.Sharded[sys.ReadOp, sys.WriteOp, sys.Resp]
	fsNR   *nr.Sharded[sys.ReadOp, sys.WriteOp, sys.Resp]

	// nsMu orders namespace broadcasts across the filesystem shards:
	// every namespace mutation is applied to all fs shards in ascending
	// shard order under this mutex, so all namespaces see the same
	// total order and stay identical.
	nsMu sync.Mutex

	// journal, when Config.WAL is set, is the write-ahead journal over
	// the block device. Replica 0's FS carries the record sink (each
	// mutation is journaled once, in apply order); Sync and SaveFS
	// drive Flush/Checkpoint under replica 0's Inspect lock.
	journal *wal.Journal

	// walGroup replaces journal on a sharded system: per-fs-shard
	// journal regions with a cross-shard group-commit coordinator.
	// Shard i's replica-0 FS carries shard i's record sink; Sync
	// commits one cross-shard round under nsMu (so a namespace
	// broadcast is never split across the commit cut).
	walGroup *walshard.Group

	// Shared data-frame allocator (physical pages for user memory).
	dataMu    sync.Mutex
	dataAlloc *mm.Buddy

	// pcaches is the sharded page cache behind the pread family: one
	// cache per filesystem shard (index = fs shard; one entry on the
	// monolithic kernel). Every replica's FS carries the matching
	// cache as its Invalidator (see readpath.go).
	pcaches []*pcache.Cache

	// Devices.
	Dispatcher *dev.Dispatcher
	Console    *dev.Console
	BlockDev   *dev.BlockDriver
	NICDrv     *dev.NICDriver
	TimerDrv   *dev.TimerDriver
	Net        *netstack.Stack

	// Futex wait queues, keyed per process and word address.
	futexMu sync.Mutex
	futexQ  map[futexKey][]chan struct{}

	// Per-process device sockets (the device half of the network path;
	// socket ids are assigned by the replicated socket table). See
	// netops.go.
	sockMu  sync.Mutex
	sockets map[proc.PID]map[uint64]*devSock

	// The receive pump: polls the interrupt controller while blocking
	// receivers are parked on their doorbells (netops.go).
	pumpMu      sync.Mutex
	pumpWaiters int
	pumpRunning bool

	// Process bookkeeping.
	procMu    sync.Mutex
	nextCore  int
	liveProcs sync.WaitGroup

	// Components is the self-inventory behind Table 1/2's vnros column.
	Components *relwork.Registry
}

type futexKey struct {
	pid proc.PID
	va  mmu.VAddr
}

// Physical memory layout carved at boot.
const (
	bounceBase    = mem.PAddr(0x4000)    // block-driver DMA bounce
	tableRegion   = mem.PAddr(16 << 20)  // page-table frames start
	tableSpan     = mem.PAddr(16 << 20)  // per replica
	dataRegionOff = mem.PAddr(128 << 20) // user data frames start
)

// Boot builds and starts a system.
func Boot(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1 + (cfg.Cores-1)/CoresPerNode
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 512 << 20
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 16
	}
	if cfg.NICAddr == 0 {
		cfg.NICAddr = 0x02_00_00_00_00_01
	}
	if dataRegionOff+((64)<<20) > cfg.MemBytes {
		return nil, fmt.Errorf("core: need at least %d MiB of memory", (dataRegionOff+(64<<20))>>20)
	}
	if cfg.Shards > 1 {
		if cfg.RestoreFS && !cfg.WAL {
			return nil, fmt.Errorf("core: sharded restore requires WAL (the per-shard journal regions are the on-disk format)")
		}
		if cfg.Shards > obs.MaxShards {
			return nil, fmt.Errorf("core: at most %d shards (obs shard-slot space)", obs.MaxShards)
		}
	}

	m := machine.New(machine.Config{
		Cores:      cfg.Cores,
		MemBytes:   cfg.MemBytes,
		DiskBlocks: cfg.DiskBlocks,
		NICAddr:    cfg.NICAddr,
	})
	s := &System{
		cfg:     cfg,
		Machine: m,
		futexQ:  make(map[futexKey][]chan struct{}),
		sockets: make(map[proc.PID]map[uint64]*devSock),
	}

	// Devices.
	s.Dispatcher = dev.NewDispatcher(m.IC)
	s.Console = dev.NewConsole(m.Serial)
	var err error
	if s.BlockDev, err = dev.NewBlockDriver(m.Disk, m.Mem, bounceBase); err != nil {
		return nil, err
	}
	if s.NICDrv, err = dev.NewNICDriver(m.NIC, s.Dispatcher); err != nil {
		return nil, err
	}
	if s.TimerDrv, err = dev.NewTimerDriver(m.Timer, s.Dispatcher); err != nil {
		return nil, err
	}
	if cfg.Network != nil {
		cfg.Network.Attach(m.NIC)
	}
	s.Net = netstack.NewStack(s.NICDrv)
	// The NIC interrupt path must run; poll from a dedicated pump when
	// frames arrive. In this simulation, delivery raises the IRQ
	// synchronously, so polling after attach suffices; the runtime also
	// polls on every syscall (see handler).

	// Shared data-frame allocator.
	dataFrames := uint64(cfg.MemBytes-dataRegionOff) / mem.PageSize
	if s.dataAlloc, err = mm.NewBuddy(m.Mem, dataRegionOff, dataFrames); err != nil {
		return nil, err
	}

	// "Insert" a pre-existing disk image, if provided.
	if cfg.BootDisk != nil {
		buf := make([]byte, cfg.BootDisk.BlockSize())
		for i := uint64(0); i < cfg.BootDisk.NumBlocks() && i < s.BlockDev.NumBlocks(); i++ {
			if err := cfg.BootDisk.ReadBlock(i, buf); err != nil {
				return nil, err
			}
			if err := s.BlockDev.WriteBlock(i, buf); err != nil {
				return nil, err
			}
		}
	}

	// Optional write-ahead journal: monolithic boots lay one journal
	// over the tail of the disk; sharded boots partition the disk into
	// per-shard journal regions behind a group-commit coordinator.
	if cfg.WAL && cfg.Shards <= 1 {
		if s.journal, err = wal.New(s.BlockDev, cfg.JournalBlocks); err != nil {
			return nil, err
		}
		if !cfg.RestoreFS {
			// Fresh boot: initialize the journal region (a restore boots
			// through Recover instead, which adopts the on-disk epoch).
			if err := s.journal.Format(); err != nil {
				return nil, err
			}
		}
	}
	if cfg.WAL && cfg.Shards > 1 {
		if s.walGroup, err = walshard.New(s.BlockDev, cfg.Shards, cfg.JournalBlocks); err != nil {
			return nil, err
		}
		if !cfg.RestoreFS {
			if err := s.walGroup.Format(); err != nil {
				return nil, err
			}
		}
	}

	// Optional boot-time filesystem restore, shared by the replica
	// constructor below.
	var bootFS func() *fs.FS
	if cfg.RestoreFS {
		bootFS = func() *fs.FS {
			if s.journal != nil {
				// Checkpoint snapshot + journal replay. Recover is
				// idempotent: each replica's call yields an identical,
				// independently owned filesystem.
				f, err := s.journal.Recover()
				if err != nil {
					return fs.New()
				}
				return f
			}
			f, err := fs.Load(s.BlockDev)
			if err != nil {
				return fs.New() // fresh disk: empty root
			}
			return f
		}
	}

	if cfg.Shards > 1 {
		// The sharded kernel: 2*Shards NR instances (process group +
		// filesystem group), each with Replicas replicas over its own
		// log. Page-table frames come from disjoint per-kernel slices of
		// the table region, sized to fit however many kernels boot.
		totalKernels := 2 * cfg.Shards * cfg.Replicas
		span := (dataRegionOff - tableRegion) / mem.PAddr(totalKernels)
		span &^= mem.PAddr(mem.PageSize - 1)
		if span < mem.PageSize {
			return nil, fmt.Errorf("core: table region too small for %d shard kernels", totalKernels)
		}
		kernelIdx := 0
		nextFrames := func() pt.FrameSource {
			base := tableRegion + mem.PAddr(kernelIdx)*span
			kernelIdx++
			return pt.NewSimpleFrameSource(m.Mem, base, base+span)
		}
		shardOpts := func(slot func(int) uint64) func(int) nr.Options {
			return func(i int) nr.Options {
				return nr.Options{
					Replicas: cfg.Replicas,
					LogSize:  cfg.ShardLogSize,
					ShardTag: 1 + int(slot(i)),
				}
			}
		}
		s.procNR = nr.NewShardedFunc(cfg.Shards, shardOpts(obs.ProcShardSlot),
			func(int) nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp] {
				return sys.NewKernel(m.Mem, nextFrames())
			})
		// The fs group's constructor runs once per replica of each
		// shard; a restore boot recovers shard i's filesystem against
		// the group's committed cut (RecoverShard is idempotent, so
		// every replica of the shard gets an identical, independently
		// owned filesystem).
		s.fsNR = nr.NewShardedFunc(cfg.Shards, shardOpts(obs.FsShardSlot),
			func(i int) nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp] {
				if cfg.RestoreFS && s.walGroup != nil {
					if f, rerr := s.walGroup.RecoverShard(i); rerr == nil {
						return sys.NewKernelWithFS(m.Mem, nextFrames(), f)
					}
				}
				return sys.NewKernel(m.Mem, nextFrames())
			})

		// Attach each shard journal's record sink to that shard's
		// replica 0: every replica applies every mutation, but exactly
		// one replica's stream is the shard journal's linearization.
		if s.walGroup != nil {
			for i := 0; i < cfg.Shards; i++ {
				jr := s.walGroup.Journal(i)
				s.InspectFsShard(i, 0, func(k *sys.Kernel) {
					k.FS().SetJournal(jr)
				})
			}
		}

		// One page cache per filesystem shard; every replica of a shard
		// publishes its invalidations into that shard's cache (whichever
		// replica's combiner applies a write first kills the cached
		// pages before the write returns).
		s.pcaches = make([]*pcache.Cache, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			cache := pcache.New(cacheFrames{s}, obs.FsShardSlot(i), 0)
			s.pcaches[i] = cache
			for r := 0; r < cfg.Replicas; r++ {
				s.InspectFsShard(i, r, func(k *sys.Kernel) {
					k.FS().SetInvalidator(cache)
				})
			}
		}
		s.registerComponents()
		return s, nil
	}

	// The replicated kernel: one replica per NUMA node, page-table
	// frames from disjoint per-replica regions so replicas never alias
	// each other's table memory.
	replicaIdx := 0
	s.nr = nr.New(nr.Options{Replicas: cfg.Replicas},
		func() nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp] {
			base := tableRegion + mem.PAddr(replicaIdx)*tableSpan
			replicaIdx++
			src := pt.NewSimpleFrameSource(m.Mem, base, base+tableSpan)
			var k *sys.Kernel
			if bootFS != nil {
				k = sys.NewKernelWithFS(m.Mem, src, bootFS())
			} else {
				k = sys.NewKernel(m.Mem, src)
			}
			s.replicas = append(s.replicas, k)
			return k
		})

	// Attach the journal sink to replica 0's filesystem: every replica
	// applies every mutation, but exactly one replica's stream is the
	// journal's linearization.
	if s.journal != nil {
		s.replicas[0].FS().SetJournal(s.journal)
	}

	// The monolithic kernel runs one page cache; every replica's FS
	// publishes invalidations into it (idempotent per mutation, applied
	// first by the writing core's combiner).
	s.pcaches = []*pcache.Cache{pcache.New(cacheFrames{s}, 0, 0)}
	for _, k := range s.replicas {
		k.FS().SetInvalidator(s.pcaches[0])
	}

	s.registerComponents()
	return s, nil
}

// syncDurable is the Sync syscall's kernel half: make every mutation
// applied so far durable. Under the journal this is one group commit
// (Flush), escalating to a checkpoint when the record area is full —
// the checkpoint absorbs the pending records into the snapshot, so no
// retry is needed. Without a journal, durability means a full snapshot.
//
// The work runs inside replica 0's Inspect, which first syncs that
// replica to the log tail: every operation completed before this sync
// has then been applied — and therefore journaled — before the flush,
// which is exactly the ordering the durability contract needs.
func (s *System) syncDurable() error {
	if s.sharded() {
		if s.walGroup == nil {
			return fmt.Errorf("core: sync needs WAL on a sharded kernel")
		}
		// One cross-shard group-commit round. nsMu is held across the
		// whole round so a namespace broadcast — the only multi-shard fs
		// mutation — is never split across the commit cut: the recovered
		// namespaces stay identical on every shard. Each fs shard's
		// replica 0 is first synced to its log tail (an empty Inspect),
		// so every operation completed before this sync has been applied
		// — and therefore journaled — before the participants are
		// chosen. The quiesces run concurrently: each one spins against
		// its shard's combiner traffic, so the round pays the slowest
		// shard, not the sum.
		s.nsMu.Lock()
		defer s.nsMu.Unlock()
		var wg sync.WaitGroup
		for i := 0; i < s.NumShards(); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s.InspectFsShard(i, 0, func(*sys.Kernel) {})
			}(i)
		}
		wg.Wait()
		return s.walGroup.Commit()
	}
	var err error
	s.nr.Replica(0).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		k := d.(*sys.Kernel)
		if s.journal == nil {
			err = fs.Save(k.FS(), s.BlockDev)
			return
		}
		err = s.journal.Flush()
		if errors.Is(err, wal.ErrJournalFull) {
			err = s.journal.Checkpoint(k.FS())
		}
	})
	return err
}

// replicaOf maps a core to its kernel replica index (the same mapping
// for every NR instance, monolithic or sharded).
func (s *System) replicaOf(core int) int {
	r := core / CoresPerNode
	if r >= s.cfg.Replicas {
		r = s.cfg.Replicas - 1
	}
	return r
}

// NumReplicas returns the kernel replica count (per NR instance).
func (s *System) NumReplicas() int { return s.cfg.Replicas }

// allocDataFrames grabs n zeroed user-data frames from the shared pool.
func (s *System) allocDataFrames(n uint64) ([]mem.PAddr, error) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	out := make([]mem.PAddr, 0, n)
	for i := uint64(0); i < n; i++ {
		f, err := s.dataAlloc.AllocOrder(0)
		if err != nil {
			for _, g := range out {
				_ = s.dataAlloc.Free(g)
			}
			return nil, err
		}
		if err := s.Machine.Mem.ZeroFrame(f); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// freeDataFrames returns frames to the shared pool.
func (s *System) freeDataFrames(frames []mem.PAddr) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	for _, f := range frames {
		_ = s.dataAlloc.Free(f)
	}
}

// handler is the per-process syscall entry: it owns the process's NR
// thread context (each process is pinned to a core, each core to a
// replica, as in NrOS).
type handler struct {
	s    *System
	core int
	// ctxMu serializes use of the NR thread context: an asynchronous
	// batch submission (Sys.Submit) crosses the boundary from its own
	// goroutine, so a process's batch and its scalar syscalls can arrive
	// concurrently on the same handler. Local ops (futex, sockets, raw
	// memory) stay outside the mutex — FutexWait blocks, and holding
	// ctxMu across it would deadlock the process's other traffic.
	ctxMu sync.Mutex
	ctx   *nr.ThreadContext[sys.ReadOp, sys.WriteOp, sys.Resp]

	// Sharded mode: thread handles across every shard of each group
	// (ctx is nil then). The router in shard_router.go sequences
	// cross-shard protocols through these under ctxMu.
	procCtx *nr.ShardedThread[sys.ReadOp, sys.WriteOp, sys.Resp]
	fsCtx   *nr.ShardedThread[sys.ReadOp, sys.WriteOp, sys.Resp]
}

func (h *handler) execute(op sys.WriteOp) sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.Execute(op)
}

func (h *handler) executeRead(op sys.ReadOp) sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.ExecuteRead(op)
}

func (h *handler) executeBatch(ops []sys.WriteOp) []sys.Resp {
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.ctx.ExecuteBatch(ops)
}

// Syscall implements sys.Handler: the kernel side of the boundary. It
// wraps the dispatch in the kstat probe — one count + latency sample
// per syscall, indexed by opcode and striped by core.
// Core reports the core this handler is pinned to — sys.CorePinned, so
// the submission ring in the process's Sys handle knows its placement.
func (h *handler) Core() int { return h.core }

func (h *handler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	t0 := obs.Start()
	ret, out := h.syscall(frame, payload)
	obs.Syscalls.Observe(frame.Num, uint32(h.core), t0)
	obs.KernelTrace.Emit(obs.KindSyscall, frame.Num, uint64(h.core))
	return ret, out
}

// syscall is the uninstrumented dispatch body.
func (h *handler) syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	s := h.s
	// Drain pending device interrupts before entering the kernel proper
	// (the simulation's interrupt delivery point). The calling core is
	// always polled; the all-core sweep — needed because the interrupt
	// controller load-balances lines round-robin and an idle core's
	// pending queue would otherwise starve — runs only when the
	// controller reports something pending anywhere (one atomic load),
	// not as an unconditional per-syscall cores-length scan.
	s.Dispatcher.Poll(h.core)
	if s.Dispatcher.HasPending() {
		for c := 0; c < s.cfg.Cores; c++ {
			s.Dispatcher.Poll(c)
		}
	}

	// The internal cross-shard protocol ops never cross the user
	// boundary; a hand-rolled frame carrying one is rejected here, in
	// both monolithic and sharded modes.
	if sys.IsInternalOp(frame.Num) {
		return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
	}

	if frame.Num == sys.NumBatch {
		return h.batch(frame, payload)
	}
	if sys.IsReadOp(frame.Num) {
		op, err := sys.DecodeRead(frame, payload)
		if err != nil {
			return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
		}
		// Pread goes through the page cache in both kernel modes: a
		// cache hit never enters an NR instance (readpath.go).
		if op.Num == sys.NumPread {
			return sys.EncodeResp(h.pread(op))
		}
		if s.sharded() {
			return sys.EncodeResp(h.shardReadDispatch(op))
		}
		return sys.EncodeResp(h.executeRead(op))
	}
	op, err := sys.DecodeWrite(frame, payload)
	if err != nil {
		return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
	}
	// Socket ops split across the determinism line: the table half is a
	// logged transition (routed inside sockOp, monolithic or sharded),
	// the device half stays core-local. See netops.go.
	if sys.IsSockOp(op.Num) {
		return sys.EncodeResp(s.sockOp(h, op))
	}
	if sys.IsLocalOp(op.Num) {
		return sys.EncodeResp(s.localOp(h, op))
	}
	// The zero-copy pread tier coordinates the page-cache pin with the
	// logged mapping transition itself, in both kernel modes.
	if op.Num == sys.NumPreadMap {
		return sys.EncodeResp(h.preadMap(op))
	}
	if op.Num == sys.NumPreadUnmap {
		return sys.EncodeResp(h.preadUnmap(op))
	}
	if s.sharded() {
		return sys.EncodeResp(h.shardWriteSyscall(op))
	}

	// mmap: attach data frames from the shared pool before logging, so
	// every replica maps the same physical pages.
	if op.Num == sys.NumMMap {
		if op.Size == 0 || op.Size%mmu.L1PageSize != 0 {
			return sys.EncodeResp(sys.Resp{Errno: sys.EINVAL})
		}
		frames, err := s.allocDataFrames(op.Size / mmu.L1PageSize)
		if err != nil {
			return sys.EncodeResp(sys.Resp{Errno: sys.ENOMEM})
		}
		op.Frames = frames
		resp := h.execute(op)
		if resp.Errno != sys.EOK {
			s.freeDataFrames(frames)
		}
		return sys.EncodeResp(resp)
	}

	resp := h.execute(op)
	// munmap/exit return the data frames they released; give them back
	// to the shared pool exactly once (here, on the calling path).
	// Cache-owned frames behind pread mappings come back separately in
	// Unpinned and return to their cache, never the pool.
	if resp.Errno == sys.EOK && len(resp.Freed) > 0 {
		s.freeDataFrames(resp.Freed)
	}
	if resp.Errno == sys.EOK && len(resp.Unpinned) > 0 {
		s.unpinFrames(resp.Unpinned)
	}
	if op.Num == sys.NumExit && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.PID)
	}
	if op.Num == sys.NumKill && op.Sig == proc.SIGKILL && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.Target)
	}
	return sys.EncodeResp(resp)
}

// batch drains one submission-queue vector through a single NR combiner
// round: decode, fence off anything non-batchable, one ExecuteBatch
// (one log reservation for the whole run), and reassemble the
// completion queue in submission order. Non-batchable ops complete
// individually with ENOSYS — a bad entry must not poison its
// neighbours' completions.
//
// Sync entries are the group-commit hook: they are pulled out of the
// state-machine run and served with ONE durability action after every
// other op of the batch has been applied — the journal flush then
// covers the entire batch, however many sync markers it carried. This
// is the "drain whole submission-ring batches into one journal flush"
// path; per-op commit (Write+Sync round trips) exists only as the
// baseline vnros-bench compares against.
func (h *handler) batch(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	t0 := obs.Start()
	ops, err := sys.DecodeBatch(frame, payload)
	if err != nil {
		return sys.EncodeBatchResp(nil, sys.EINVAL)
	}
	comps := make([]sys.Completion, len(ops))
	var sops []*sockBatchOp
	var preadIdx []int
	syncIdx := make([]int, 0, 1)
	nOther := 0
	for i := range ops {
		switch {
		case sys.IsBatchableOp(ops[i].Num):
			nOther++
		case ops[i].Num == sys.NumPread || ops[i].Num == sys.NumPreadMap:
			// Served from the page cache after the logged run below (see
			// sys.OpPread for the ordering contract).
			preadIdx = append(preadIdx, i)
		case sys.IsSockOp(ops[i].Num):
			// Socket entries run in three passes around the table
			// execution below: device bind resolution before, device
			// transmit/receive/teardown after (netops.go).
			sops = append(sops, &sockBatchOp{i: i, op: ops[i]})
		case ops[i].Num == sys.NumSync:
			syncIdx = append(syncIdx, i)
		default:
			comps[i] = sys.Completion{Op: ops[i].Num, Errno: sys.ENOSYS}
		}
	}
	h.sockBatchDevBind(sops, comps)
	if nOther+len(sops) > 0 {
		if h.s.sharded() {
			// Per-shard logs cannot take one contiguous reservation for a
			// mixed batch. The socket-table ops all key to the submitting
			// PID's process shard, so they drain in whole ExecuteBatchOn
			// rounds (no per-op combiner round); the file ops still route
			// through the cross-shard protocols individually. Socket-table
			// and file state are disjoint, so running the socket rounds
			// first preserves every per-object ordering.
			h.ctxMu.Lock()
			h.sockBatchTableSharded(sops, comps)
			for i := range ops {
				if sys.IsBatchableOp(ops[i].Num) {
					comps[i] = sys.BatchCompletion(ops[i], h.shardWrite(ops[i]))
				}
			}
			h.ctxMu.Unlock()
		} else {
			// One combiner round for the whole batch: file ops and the
			// socket-table halves interleave in submission order in a
			// single ExecuteBatch vector.
			run := make([]sys.WriteOp, 0, nOther+len(sops))
			fsIdx := make([]int, 0, nOther+len(sops)) // completion index, -1 = socket
			runSo := make([]*sockBatchOp, 0, len(sops))
			si := 0
			for i := range ops {
				switch {
				case sys.IsBatchableOp(ops[i].Num):
					run = append(run, ops[i])
					fsIdx = append(fsIdx, i)
					runSo = append(runSo, nil)
				case sys.IsSockOp(ops[i].Num):
					so := sops[si]
					si++
					if so.skip || so.op.Num == sys.NumSockRecv {
						continue // completed early, or device-only
					}
					run = append(run, so.tableOp())
					fsIdx = append(fsIdx, -1)
					runSo = append(runSo, so)
				}
			}
			if len(run) > 0 {
				for j, r := range h.executeBatch(run) {
					if so := runSo[j]; so != nil {
						so.tab = r
					} else {
						comps[fsIdx[j]] = sys.BatchCompletion(run[j], r)
					}
				}
			}
		}
	}
	// Pread entries complete after every logged op of the batch has
	// applied, so they observe all of the batch's writes. Outside ctxMu:
	// the cache path takes the thread context per kernel crossing.
	for _, i := range preadIdx {
		if ops[i].Num == sys.NumPread {
			r := h.pread(sys.ReadOp{
				Num: sys.NumPread, PID: ops[i].PID, FD: ops[i].FD,
				Len: ops[i].Len, Off: uint64(ops[i].Off),
			})
			comps[i] = sys.BatchCompletion(ops[i], r)
		} else {
			comps[i] = sys.BatchCompletion(ops[i], h.preadMap(ops[i]))
		}
	}
	h.sockBatchPost(sops, comps)
	if len(syncIdx) > 0 {
		// One group commit for the whole batch (after its ops applied;
		// outside ctxMu — the flush takes replica locks instead). On a
		// sharded kernel with WAL the commit is one cross-shard round
		// fanning out to the shards with pending records; sharded
		// without WAL durability is unsupported (see syncDurable), so
		// sync markers complete with ENOSYS.
		e := sys.EOK
		if h.s.sharded() && h.s.walGroup == nil {
			e = sys.ENOSYS
		} else if err := h.s.syncDurable(); err != nil {
			e = sys.EIO
		}
		for _, i := range syncIdx {
			comps[i] = sys.Completion{Op: sys.NumSync, Errno: e}
		}
	}
	obs.SyscallBatchSize.Record(uint32(h.core), uint64(len(ops)))
	obs.SyscallBatchLatency.Since(uint32(h.core), t0)
	obs.KernelTrace.Emit(obs.KindBatch, uint64(len(ops)), uint64(h.core))
	return sys.EncodeBatchResp(comps, sys.EOK)
}

// cleanupProcessLocal tears down core-side state (sockets, futexes).
func (s *System) cleanupProcessLocal(pid proc.PID) {
	s.sockMu.Lock()
	for _, ds := range s.sockets[pid] {
		// Close rings the doorbell, so receivers parked on the socket
		// wake into EBADF rather than sleeping forever.
		_ = ds.sock.Close()
	}
	delete(s.sockets, pid)
	s.sockMu.Unlock()

	s.futexMu.Lock()
	for k, q := range s.futexQ {
		if k.pid == pid {
			for _, ch := range q {
				close(ch)
			}
			delete(s.futexQ, k)
		}
	}
	s.futexMu.Unlock()
}
