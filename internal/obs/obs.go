// Package obs is the kernel observability subsystem: low-overhead
// statistics ("kstats") and event tracing for the simulated OS. The
// paper's refinement argument (§4.3–4.4) promises that NR's
// flat-combining log and the syscall state machine behave as specified;
// obs makes that behavior visible at runtime — combiner batch sizes,
// log-full stalls, per-opcode syscall latencies, scheduler dispatches —
// so perf work on the hot paths is measurable instead of guessed at.
//
// Design constraints, in priority order:
//
//  1. The record path must be allocation-free and nearly free when
//     stats are disabled: one atomic load of the global gate.
//  2. When enabled, concurrent recorders must not contend: counters
//     and histogram buckets are sharded into cache-line-padded cells,
//     indexed by a caller-supplied shard hint (replica id, core id,
//     PID — anything stable per recording thread).
//  3. Reading is rare and may be slow: Snapshot() sums shards and
//     copies the trace ring under no lock, tolerating torn totals
//     (each individual cell is read atomically).
//
// The global gate defaults to off, so the subsystem costs one predicted
// branch per instrumentation site unless a tool (cmd/vnros-bench,
// `vnros stats`) turns it on.
//
// Even enabled, the expensive recordings — anything that needs a clock
// read (latency tokens), a histogram bucket update, or a trace-ring
// slot — are *sampled*: by default 1 in 64 events pays the full cost,
// the rest fall out after a cheap per-thread random draw. Counters and
// per-opcode counts are always exact (a single padded atomic add).
// Uniform sampling leaves the latency *distribution* unbiased, which is
// what percentiles are computed from; tools that want every event
// (tiny demo workloads) call SetSampleRate(1).
package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global gate. All record paths check it first.
var enabled atomic.Bool

// Enable turns stat recording on.
func Enable() { enabled.Store(true) }

// Disable turns stat recording off. Already-recorded values remain
// until Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// DefaultSampleRate is the default 1-in-N sampling of clock reads,
// histogram updates, and trace emits.
const DefaultSampleRate = 64

// sampleMask is rate-1 for a power-of-two rate; 0 means every event.
var sampleMask = func() (m atomic.Uint64) {
	m.Store(DefaultSampleRate - 1)
	return
}()

// SetSampleRate sets the sampling rate for the expensive record paths:
// 1 in n Start tokens, histogram records, and trace emits go through.
// n is rounded up to a power of two; n <= 1 records everything.
func SetSampleRate(n int) {
	m := uint64(0)
	for int(m)+1 < n {
		m = m<<1 | 1
	}
	sampleMask.Store(m)
}

// sampled is the per-event sampling draw. rand/v2's global generator
// reads per-thread state, so concurrent recorders don't contend.
func sampled() bool {
	m := sampleMask.Load()
	return m == 0 || rand.Uint64()&m == 0
}

// Start returns a start token for latency measurement: the current
// time when stats are enabled and this event is sampled, the zero Time
// otherwise. Hist.Since ignores zero tokens, so a disabled system never
// calls time.Now, and an enabled one only pays the clock read on
// sampled events.
func Start() (t time.Time) {
	if enabled.Load() && sampled() {
		t = time.Now()
	}
	return
}

// NumShards is the number of independent cells per counter/histogram.
// Power of two; shard hints are masked into range.
const NumShards = 8

const shardMask = NumShards - 1

// shardSeq hands out shard hints for instrumented objects that have no
// natural identity (kernel replicas, page-table instances). Assigning
// at construction keeps the per-operation path free of hashing.
var shardSeq atomic.Uint32

// NextShard returns a fresh shard hint, round-robin over the shard
// space.
func NextShard() uint32 { return shardSeq.Add(1) - 1 }

// registry holds every metric created through the New* constructors, in
// creation order, for Snapshot.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Hist
	ops      []*OpStats
	traces   []*Trace
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Enabled  bool
	Counters map[string]uint64
	Gauges   map[string]uint64
	Hists    map[string]HistSnapshot
	Ops      map[string][]OpSnapshot
	Traces   map[string][]Event
}

// TakeSnapshot sums every registered metric. Concurrent recording is
// allowed; totals may be momentarily torn across metrics but each cell
// is read atomically.
func TakeSnapshot() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s := Snapshot{
		Enabled:  enabled.Load(),
		Counters: make(map[string]uint64, len(registry.counters)),
		Gauges:   make(map[string]uint64, len(registry.gauges)),
		Hists:    make(map[string]HistSnapshot, len(registry.hists)),
		Ops:      make(map[string][]OpSnapshot, len(registry.ops)),
		Traces:   make(map[string][]Event, len(registry.traces)),
	}
	for _, c := range registry.counters {
		s.Counters[c.name] = c.Load()
	}
	for _, g := range registry.gauges {
		if g.Touched() {
			s.Gauges[g.name] = g.Load()
		}
	}
	for _, h := range registry.hists {
		s.Hists[h.name] = h.Snapshot()
	}
	for _, o := range registry.ops {
		s.Ops[o.name] = o.Snapshot()
	}
	for _, t := range registry.traces {
		s.Traces[t.name] = t.Snapshot()
	}
	return s
}

// Reset zeroes every registered metric and clears trace rings. Used by
// benches between phases.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.reset()
	}
	for _, g := range registry.gauges {
		g.reset()
	}
	for _, h := range registry.hists {
		h.reset()
	}
	for _, o := range registry.ops {
		o.reset()
	}
	for _, t := range registry.traces {
		t.reset()
	}
}

// sortedKeys returns map keys in stable order (render helpers).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
