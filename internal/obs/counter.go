package obs

import "sync/atomic"

// cell is one cache-line-padded counter shard. The padding keeps
// concurrent recorders on different shards from false-sharing a line
// (64-byte lines on the paper's testbed; 128 would also cover adjacent
// prefetch, but doubles the footprint of the per-opcode histograms).
type cell struct {
	v atomic.Uint64
	_ [7]uint64
}

// Counter is a monotonically increasing, shard-striped counter.
type Counter struct {
	name  string
	cells [NumShards]cell
}

// NewCounter creates and registers a counter.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n on the caller's shard. No-op while
// stats are disabled.
func (c *Counter) Add(shard uint32, n uint64) {
	if !enabled.Load() {
		return
	}
	c.cells[shard&shardMask].v.Add(n)
}

// Load sums the shards.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

func (c *Counter) reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}
