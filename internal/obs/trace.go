package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one kernel trace record: a monotone sequence number, a
// wall-clock timestamp, a kind id (registered via RegisterKind) and two
// payload words whose meaning the kind defines (opcode and PID, TID and
// core, VA and frame, ...).
type Event struct {
	Seq  uint64
	TS   int64 // UnixNano
	Kind uint32
	A, B uint64
}

// traceSlot is one ring slot. Every field is atomic so a writer lapping
// the ring while Snapshot reads never constitutes a data race; a torn
// (mid-overwrite) slot is detected by re-checking seq after the reads.
type traceSlot struct {
	seq  atomic.Uint64 // logical index + 1; 0 = never written
	ts   atomic.Int64
	kind atomic.Uint32
	a, b atomic.Uint64
}

// Trace is a bounded, lock-free event ring. Writers claim a slot with a
// fetch-add and overwrite the oldest event when the ring is full — the
// ring always holds the most recent window, which is what a postmortem
// wants.
type Trace struct {
	name  string
	slots []traceSlot
	mask  uint64
	next  atomic.Uint64
}

// NewTrace creates and registers a trace ring with at least size slots
// (rounded up to a power of two; minimum 16).
func NewTrace(name string, size int) *Trace {
	n := 16
	for n < size {
		n <<= 1
	}
	t := &Trace{name: name, slots: make([]traceSlot, n), mask: uint64(n - 1)}
	registry.mu.Lock()
	registry.traces = append(registry.traces, t)
	registry.mu.Unlock()
	return t
}

// Name returns the ring's registered name.
func (t *Trace) Name() string { return t.name }

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.slots) }

// Emit records an event. Allocation-free; no-op while stats are
// disabled, subject to the global sample rate while enabled (the ring
// then holds a uniform sample of the recent window rather than every
// event).
func (t *Trace) Emit(kind uint32, a, b uint64) {
	if !enabled.Load() || !sampled() {
		return
	}
	i := t.next.Add(1) - 1
	s := &t.slots[i&t.mask]
	// Invalidate first so a concurrent Snapshot never mistakes a
	// half-written slot for the old complete event.
	s.seq.Store(0)
	s.ts.Store(time.Now().UnixNano())
	s.kind.Store(kind)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(i + 1)
}

// Snapshot copies the ring's complete events in sequence order.
func (t *Trace) Snapshot() []Event {
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		e := Event{Seq: seq - 1, TS: s.ts.Load(), Kind: s.kind.Load(), A: s.a.Load(), B: s.b.Load()}
		if s.seq.Load() != seq {
			continue // overwritten mid-read
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

func (t *Trace) reset() {
	for i := range t.slots {
		t.slots[i].seq.Store(0)
	}
	t.next.Store(0)
}

// Kind registry: stable small ids for event kinds, resolvable back to
// names when rendering.
var kinds struct {
	mu    sync.Mutex
	names []string
}

// RegisterKind assigns an id to a trace event kind. Call once per kind
// at package init.
func RegisterKind(name string) uint32 {
	kinds.mu.Lock()
	defer kinds.mu.Unlock()
	kinds.names = append(kinds.names, name)
	return uint32(len(kinds.names) - 1)
}

// KindName resolves a kind id.
func KindName(k uint32) string {
	kinds.mu.Lock()
	defer kinds.mu.Unlock()
	if int(k) < len(kinds.names) {
		return kinds.names[k]
	}
	return fmt.Sprintf("kind%d", k)
}

// RenderTrace prints the last n events of a snapshot (n <= 0: all).
func RenderTrace(events []Event, n int) string {
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "  %8d %s %-14s a=%#x b=%#x\n",
			e.Seq, time.Unix(0, e.TS).Format("15:04:05.000000"), KindName(e.Kind), e.A, e.B)
	}
	return b.String()
}
