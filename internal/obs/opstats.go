package obs

import (
	"fmt"
	"strings"
	"time"
)

// OpStats tracks a family of operations indexed by a small integer
// opcode: a count and a latency histogram per opcode. The syscall
// boundary uses one instance indexed by sys.Num*; obs itself stays
// ignorant of opcode names — callers supply a namer at render time, so
// the dependency arrow keeps pointing from the instrumented layers into
// obs and never back.
type OpStats struct {
	name  string
	count []*Counter
	lat   []*Hist
}

// NewOpStats creates and registers an operation family with numOps
// opcodes (opcodes >= numOps are clamped onto the last slot rather than
// dropped, so a new syscall never records out of bounds).
func NewOpStats(name string, numOps int) *OpStats {
	if numOps < 1 {
		numOps = 1
	}
	o := &OpStats{name: name}
	for i := 0; i < numOps; i++ {
		// Members are not individually registered: OpStats snapshots
		// them as a unit.
		o.count = append(o.count, &Counter{name: fmt.Sprintf("%s.count.%d", name, i)})
		o.lat = append(o.lat, &Hist{name: fmt.Sprintf("%s.latency.%d", name, i), unit: UnitNanos})
	}
	registry.mu.Lock()
	registry.ops = append(registry.ops, o)
	registry.mu.Unlock()
	return o
}

func (o *OpStats) clamp(op uint64) int {
	if op >= uint64(len(o.count)) {
		return len(o.count) - 1
	}
	return int(op)
}

// Count increments the opcode's counter without latency.
func (o *OpStats) Count(op uint64, shard uint32) {
	if !enabled.Load() {
		return
	}
	i := o.clamp(op)
	o.count[i].cells[shard&shardMask].v.Add(1)
}

// Observe records one completed operation: a count plus its latency
// from a Start token. Zero tokens record the count only.
func (o *OpStats) Observe(op uint64, shard uint32, t0 time.Time) {
	if !enabled.Load() {
		return
	}
	i := o.clamp(op)
	o.count[i].cells[shard&shardMask].v.Add(1)
	o.lat[i].Since(shard, t0)
}

func (o *OpStats) reset() {
	for i := range o.count {
		o.count[i].reset()
		o.lat[i].reset()
	}
}

// OpSnapshot is one opcode's share of an OpStats snapshot.
type OpSnapshot struct {
	Op      uint64
	Count   uint64
	Latency HistSnapshot
}

// Snapshot returns the non-empty opcodes in opcode order.
func (o *OpStats) Snapshot() []OpSnapshot {
	var out []OpSnapshot
	for i := range o.count {
		n := o.count[i].Load()
		if n == 0 {
			continue
		}
		out = append(out, OpSnapshot{Op: uint64(i), Count: n, Latency: o.lat[i].Snapshot()})
	}
	return out
}

// RenderOps prints an OpStats snapshot as a percentile table. namer
// maps opcodes to display names (nil falls back to the number).
func RenderOps(title string, ops []OpSnapshot, namer func(uint64) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s %10s\n", "op", "count", "mean", "p50", "p95", "p99")
	for _, o := range ops {
		name := fmt.Sprintf("op%d", o.Op)
		if namer != nil {
			name = namer(o.Op)
		}
		l := o.Latency
		if l.Count == 0 {
			fmt.Fprintf(&b, "%-14s %10d %10s %10s %10s %10s\n", name, o.Count, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-14s %10d %10s %10s %10s %10s\n", name, o.Count,
			l.formatValue(uint64(l.Mean())),
			l.formatValue(l.Percentile(0.50)),
			l.formatValue(l.Percentile(0.95)),
			l.formatValue(l.Percentile(0.99)))
	}
	return b.String()
}
