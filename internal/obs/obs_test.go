package obs

import (
	"sync"
	"testing"
	"time"
)

// Metrics here are created fresh per test (not the kernel set) so tests
// do not interfere with each other through the global registry totals.

func withStats(t *testing.T) {
	t.Helper()
	Enable()
	SetSampleRate(1) // tests assert exact totals
	t.Cleanup(func() {
		Disable()
		SetSampleRate(DefaultSampleRate)
		Reset()
	})
}

func TestSampleRateThinsExpensivePaths(t *testing.T) {
	Enable()
	SetSampleRate(4)
	t.Cleanup(func() {
		Disable()
		SetSampleRate(DefaultSampleRate)
		Reset()
	})
	c := NewCounter("test.sampled.counter")
	h := NewHist("test.sampled.hist", UnitCount)
	const n = 100_000
	for i := 0; i < n; i++ {
		c.Add(0, 1)
		h.Record(0, uint64(i))
	}
	if got := c.Load(); got != n {
		t.Fatalf("counters must stay exact under sampling: %d != %d", got, n)
	}
	got := h.Snapshot().Count
	if got < n/8 || got > n/2 {
		t.Fatalf("hist recorded %d of %d at rate 4, want ~%d", got, n, n/4)
	}
	// Rate <= 1 records everything again.
	SetSampleRate(1)
	h.reset()
	for i := 0; i < 1000; i++ {
		h.Record(0, uint64(i))
	}
	if got := h.Snapshot().Count; got != 1000 {
		t.Fatalf("rate 1 dropped records: %d != 1000", got)
	}
}

func TestCounterShardsSum(t *testing.T) {
	withStats(t)
	c := NewCounter("test.counter")
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 2*NumShards; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(uint32(g), 1)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != 2*NumShards*per {
		t.Fatalf("counter = %d, want %d", got, 2*NumShards*per)
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	Disable()
	c := NewCounter("test.disabled.counter")
	h := NewHist("test.disabled.hist", UnitCount)
	tr := NewTrace("test.disabled.trace", 16)
	c.Add(0, 5)
	h.Record(0, 5)
	tr.Emit(0, 1, 2)
	if t0 := Start(); !t0.IsZero() {
		t.Fatal("Start returned non-zero token while disabled")
	}
	h.Since(0, Start())
	if c.Load() != 0 || h.Snapshot().Count != 0 || len(tr.Snapshot()) != 0 {
		t.Fatal("disabled metrics recorded values")
	}
}

func TestHistBucketsAndPercentiles(t *testing.T) {
	withStats(t)
	h := NewHist("test.hist", UnitCount)
	// 100 values: 1..100. p50 ≈ 50, p99 ≈ 99, within log2-bucket error
	// (the estimate may be up to 2x off but must stay in the bucket).
	for v := uint64(1); v <= 100; v++ {
		h.Record(uint32(v), v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	p50 := s.Percentile(0.50)
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %d outside [32,64]", p50)
	}
	p99 := s.Percentile(0.99)
	if p99 < 64 || p99 > 128 {
		t.Fatalf("p99 = %d outside [64,128]", p99)
	}
	if s.Percentile(0) > 1 {
		t.Fatalf("p0 = %d", s.Percentile(0))
	}
	if got := s.Percentile(1); got < 64 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestHistSince(t *testing.T) {
	withStats(t)
	h := NewHist("test.hist.since", UnitNanos)
	t0 := Start()
	if t0.IsZero() {
		t.Fatal("Start returned zero while enabled")
	}
	time.Sleep(time.Millisecond)
	h.Since(0, t0)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < uint64(time.Millisecond) {
		t.Fatalf("recorded %v < 1ms", time.Duration(s.Sum))
	}
}

func TestTraceRingKeepsMostRecent(t *testing.T) {
	withStats(t)
	tr := NewTrace("test.trace", 16)
	for i := uint64(0); i < 100; i++ {
		tr.Emit(1, i, i*2)
	}
	evs := tr.Snapshot()
	if len(evs) != tr.Cap() {
		t.Fatalf("got %d events, want %d", len(evs), tr.Cap())
	}
	// The ring holds exactly the last Cap() events, in order.
	for i, e := range evs {
		want := uint64(100 - tr.Cap() + i)
		if e.Seq != want || e.A != want || e.B != want*2 {
			t.Fatalf("event %d = %+v, want seq %d", i, e, want)
		}
	}
}

func TestTraceConcurrentEmitAndSnapshot(t *testing.T) {
	withStats(t)
	tr := NewTrace("test.trace.concurrent", 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					tr.Emit(uint32(g), i, i)
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		evs := tr.Snapshot()
		for j := 1; j < len(evs); j++ {
			if evs[j].Seq <= evs[j-1].Seq {
				t.Fatalf("snapshot out of order at %d", j)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestOpStatsClampAndSnapshot(t *testing.T) {
	withStats(t)
	o := NewOpStats("test.ops", 4)
	o.Observe(1, 0, Start())
	o.Observe(1, 1, Start())
	o.Count(99, 0) // out of range: clamps onto last op
	snap := o.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Op != 1 || snap[0].Count != 2 || snap[0].Latency.Count != 2 {
		t.Fatalf("op1 = %+v", snap[0])
	}
	if snap[1].Op != 3 || snap[1].Count != 1 {
		t.Fatalf("clamped op = %+v", snap[1])
	}
	out := RenderOps("test", snap, func(op uint64) string { return "x" })
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	withStats(t)
	c := NewCounter("test.snapreset.counter")
	h := NewHist("test.snapreset.hist", UnitCount)
	c.Add(3, 7)
	h.Record(0, 9)
	s := TakeSnapshot()
	if s.Counters["test.snapreset.counter"] != 7 {
		t.Fatalf("snapshot counter = %d", s.Counters["test.snapreset.counter"])
	}
	if s.Hists["test.snapreset.hist"].Count != 1 {
		t.Fatal("snapshot hist missing")
	}
	if s.RenderSummary() == "" {
		t.Fatal("empty summary")
	}
	Reset()
	if c.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("reset left values")
	}
}

func TestKernelMetricSetRegistered(t *testing.T) {
	s := TakeSnapshot()
	for _, name := range []string{"nr.log_full_stalls", "sched.dispatches", "fs.meta_ops"} {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("kernel counter %s not registered", name)
		}
	}
	for _, name := range []string{"nr.batch_size", "pt.map_latency"} {
		if _, ok := s.Hists[name]; !ok {
			t.Errorf("kernel hist %s not registered", name)
		}
	}
	if _, ok := s.Ops["syscall"]; !ok {
		t.Error("syscall op family not registered")
	}
	if KindName(KindSyscall) != "syscall" {
		t.Errorf("KindName = %q", KindName(KindSyscall))
	}
}

// Overhead guardrails: the disabled record path must be a handful of
// nanoseconds (one atomic load + branch), the enabled path well under
// the microsecond scale of the operations it instruments.

func BenchmarkCounterAddDisabled(b *testing.B) {
	Disable()
	c := NewCounter("bench.counter.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	Enable()
	defer func() { Disable(); Reset() }()
	c := NewCounter("bench.counter.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}

func BenchmarkHistRecordEnabled(b *testing.B) {
	Enable()
	SetSampleRate(1)
	defer func() { Disable(); SetSampleRate(DefaultSampleRate); Reset() }()
	h := NewHist("bench.hist.enabled", UnitNanos)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(0, uint64(i))
	}
}

func BenchmarkStartSinceEnabled(b *testing.B) {
	Enable()
	SetSampleRate(1)
	defer func() { Disable(); SetSampleRate(DefaultSampleRate); Reset() }()
	h := NewHist("bench.hist.since", UnitNanos)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Since(0, Start())
	}
}

// BenchmarkStartSinceSampled measures the production configuration: the
// default sample rate amortizes the clock reads, leaving the cheap
// per-event draw.
func BenchmarkStartSinceSampled(b *testing.B) {
	Enable()
	defer func() { Disable(); Reset() }()
	h := NewHist("bench.hist.since.sampled", UnitNanos)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Since(0, Start())
	}
}

func BenchmarkTraceEmitEnabled(b *testing.B) {
	Enable()
	SetSampleRate(1)
	defer func() { Disable(); SetSampleRate(DefaultSampleRate); Reset() }()
	tr := NewTrace("bench.trace", 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, uint64(i), 0)
	}
}
