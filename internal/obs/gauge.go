package obs

import "sync/atomic"

// Gauge is an instantaneous value (a level, not a rate): log tails,
// apply lags, queue depths. Unlike Counter it is Set, not accumulated,
// so it needs no shard striping — writers race benignly to publish the
// latest observation of the same quantity.
type Gauge struct {
	name string
	v    atomic.Uint64
	set  atomic.Bool
}

// NewGauge creates and registers a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.mu.Lock()
	registry.gauges = append(registry.gauges, g)
	registry.mu.Unlock()
	return g
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set publishes the current value. No-op while stats are disabled.
func (g *Gauge) Set(v uint64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
	g.set.Store(true)
}

// Load returns the last published value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// Touched reports whether the gauge has been Set since the last reset —
// untouched gauges are omitted from snapshots so a fixed pre-registered
// vector (one gauge per potential shard) doesn't spam zero lines.
func (g *Gauge) Touched() bool { return g.set.Load() }

func (g *Gauge) reset() {
	g.v.Store(0)
	g.set.Store(false)
}
