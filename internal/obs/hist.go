package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers bits.Len64 of any uint64: bucket b holds values
// whose bit length is b, i.e. [2^(b-1), 2^b) for b ≥ 1 and exactly 0
// for b = 0. Fixed log₂ buckets make the record path a single BSR plus
// an atomic add — no comparison ladder, no allocation.
const numBuckets = 65

// Unit tags what a histogram's values mean, for rendering.
type Unit uint8

// Histogram units.
const (
	UnitCount Unit = iota // dimensionless values (batch sizes, ...)
	UnitNanos             // latencies in nanoseconds
)

// histCell is one shard of a histogram. Unlike Counter cells the bucket
// array itself provides spatial spread, so only the hot count/sum pair
// is padded.
type histCell struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [6]uint64
}

// Hist is a shard-striped log₂-bucket histogram.
type Hist struct {
	name  string
	unit  Unit
	cells [NumShards]histCell
}

// NewHist creates and registers a histogram.
func NewHist(name string, unit Unit) *Hist {
	h := &Hist{name: name, unit: unit}
	registry.mu.Lock()
	registry.hists = append(registry.hists, h)
	registry.mu.Unlock()
	return h
}

// Name returns the histogram's registered name.
func (h *Hist) Name() string { return h.name }

// Record adds one observation of v on the caller's shard. No-op while
// stats are disabled; subject to the global sample rate while enabled.
func (h *Hist) Record(shard uint32, v uint64) {
	if !enabled.Load() || !sampled() {
		return
	}
	h.record(shard, v)
}

func (h *Hist) record(shard uint32, v uint64) {
	c := &h.cells[shard&shardMask]
	c.buckets[bits.Len64(v)].Add(1)
	c.count.Add(1)
	c.sum.Add(v)
}

// Since records the elapsed time from a Start token as nanoseconds. A
// zero token (stats were disabled at Start) is ignored, so the pair
// Start/Since is safe to leave in a hot path unconditionally.
func (h *Hist) Since(shard uint32, t0 time.Time) {
	if t0.IsZero() || !enabled.Load() {
		return
	}
	d := time.Since(t0)
	if d < 0 {
		d = 0
	}
	h.record(shard, uint64(d))
}

func (h *Hist) reset() {
	for i := range h.cells {
		c := &h.cells[i]
		for b := range c.buckets {
			c.buckets[b].Store(0)
		}
		c.count.Store(0)
		c.sum.Store(0)
	}
}

// Snapshot sums the shards.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Unit: h.unit}
	for i := range h.cells {
		c := &h.cells[i]
		for b := range c.buckets {
			s.Buckets[b] += c.buckets[b].Load()
		}
		s.Count += c.count.Load()
		s.Sum += c.sum.Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram.
type HistSnapshot struct {
	Name    string
	Unit    Unit
	Count   uint64
	Sum     uint64
	Buckets [numBuckets]uint64
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the value range [lo, hi) covered by bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 1
	}
	return 1 << (b - 1), 1 << b
}

// Percentile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket where the cumulative count crosses
// the target rank. With log₂ buckets the estimate is within 2× of the
// true value, which is enough to tell a 2 µs syscall from a 200 µs one.
func (s HistSnapshot) Percentile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := 0; b < numBuckets; b++ {
		n := float64(s.Buckets[b])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / n
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += n
	}
	// All mass consumed without crossing (rank == Count, rounding): top
	// occupied bucket's upper bound.
	for b := numBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] > 0 {
			_, hi := bucketBounds(b)
			return hi - 1
		}
	}
	return 0
}

// formatValue renders v in the histogram's unit.
func (s HistSnapshot) formatValue(v uint64) string {
	if s.Unit == UnitNanos {
		return time.Duration(v).Round(10 * time.Nanosecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// Render prints the histogram as rows of "range  count  bar", skipping
// leading and trailing empty buckets.
func (s HistSnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d samples", s.Name, s.Count)
	if s.Count == 0 {
		b.WriteString("\n")
		return b.String()
	}
	if s.Unit == UnitNanos {
		fmt.Fprintf(&b, ", mean %s, p50 %s, p95 %s, p99 %s",
			s.formatValue(uint64(s.Mean())),
			s.formatValue(s.Percentile(0.50)),
			s.formatValue(s.Percentile(0.95)),
			s.formatValue(s.Percentile(0.99)))
	} else {
		fmt.Fprintf(&b, ", mean %.1f", s.Mean())
	}
	b.WriteString("\n")
	lo, hi := 0, numBuckets-1
	for lo < numBuckets && s.Buckets[lo] == 0 {
		lo++
	}
	for hi > lo && s.Buckets[hi] == 0 {
		hi--
	}
	var max uint64
	for i := lo; i <= hi; i++ {
		if s.Buckets[i] > max {
			max = s.Buckets[i]
		}
	}
	for i := lo; i <= hi; i++ {
		blo, bhi := bucketBounds(i)
		width := int(40 * s.Buckets[i] / max)
		fmt.Fprintf(&b, "  [%8s, %8s) %10d %s\n",
			s.formatValue(blo), s.formatValue(bhi), s.Buckets[i],
			strings.Repeat("#", width))
	}
	return b.String()
}
