package obs

import (
	"fmt"
	"strings"
)

// The kernel-wide metric set. Instrumented layers (nr, sys, core,
// sched, fs, pt) reference these directly; keeping the declarations
// here means one place documents what the kernel measures, and the
// instrumented packages add only record calls.
//
// Metrics recorded inside the replicated state machine (kernel.apply,
// sched.*, fs.*, pt.*) count per *application*, not per syscall: NR
// applies every logged operation once per replica, so with R replicas
// those totals are R× the syscall counts. The dispatch-boundary metrics
// (syscall family, nr.*) count once per call.
var (
	// NR flat-combining log (internal/nr).
	NRBatchSize      = NewHist("nr.batch_size", UnitCount)      // ops per combiner pass
	NRCombineLatency = NewHist("nr.combine_latency", UnitNanos) // full combine() pass
	NRLogFullStalls  = NewCounter("nr.log_full_stalls")         // waitForSpace entries that had to wait
	NRLogStallTime   = NewHist("nr.log_stall", UnitNanos)       // time spent waiting for ring space
	NRExecuteRetries = NewCounter("nr.execute_retries")         // defensive retry in Execute

	// Syscall dispatch boundary (internal/core handler), once per
	// syscall, indexed by sys.Num*.
	Syscalls = NewOpStats("syscall", MaxSyscallOps)

	// Kernel state-machine applies (internal/sys DispatchWrite/
	// DispatchRead), once per replica per op, indexed by sys.Num*.
	KernelApplies = NewOpStats("kernel.apply", MaxSyscallOps)

	// Batched submission ring (sys.Submit / core batch dispatch), once
	// per submitted batch.
	SyscallBatchSize    = NewHist("syscall.batch_size", UnitCount)    // ops per batch
	SyscallBatchLatency = NewHist("syscall.batch_latency", UnitNanos) // full batch round

	// Completion-driven reaping (sys.Batch.Wait/WaitN), striped by the
	// waiter's core. ring.wait_parks vs ring.wait_spins is the
	// wait-mode discipline made observable: a blocking wait must park
	// (parks ≥ 1, spins = 0), never burn the core.
	RingWaitParks    = NewCounter("ring.wait_parks")    // blocking waits that parked on the CQ doorbell
	RingWaitWakes    = NewCounter("ring.wait_wakes")    // doorbell wakeups delivered to waiters
	RingWaitSpins    = NewCounter("ring.wait_spins")    // spin-mode poll iterations
	RingChunksPosted = NewCounter("ring.chunks_posted") // partial completion posts (doorbell rings mid-batch)

	// Scheduler (internal/sched).
	SchedDispatches = NewCounter("sched.dispatches") // successful PickNext
	SchedPreempts   = NewCounter("sched.preempts")   // Yield
	SchedBlocks     = NewCounter("sched.blocks")
	SchedWakes      = NewCounter("sched.wakes")

	// Filesystem (internal/fs).
	FSReadLatency  = NewHist("fs.read_latency", UnitNanos)
	FSWriteLatency = NewHist("fs.write_latency", UnitNanos)
	FSMetaOps      = NewCounter("fs.meta_ops") // create/unlink/mkdir/rmdir/link/rename

	// Page cache (internal/pcache), striped by fs shard. Hits are served
	// lock-free under an epoch pin; misses fall through to the
	// authoritative fs read. Invalidations count writer-published kills
	// (one per overlapping write/truncate, however many pages died);
	// evictions count capacity-pressure retirements.
	PCacheHits          = NewCounter("pcache.hit")
	PCacheMisses        = NewCounter("pcache.miss")
	PCacheInvalidations = NewCounter("pcache.invalidations")
	PCacheEvictions     = NewCounter("pcache.evictions")

	// NR read-path discipline (nr.ExecuteRead), striped by replica. A
	// fast read found the replica already caught up to the log tail on
	// entry; a sync read had to wait for (or drive) the combiner first.
	NRReadFast = NewCounter("nr.read_fast")
	NRReadSync = NewCounter("nr.read_sync")

	// Page tables (internal/pt).
	PTMapLatency   = NewHist("pt.map_latency", UnitNanos)
	PTUnmapLatency = NewHist("pt.unmap_latency", UnitNanos)

	// Write-ahead journal (internal/wal).
	WALAppends         = NewCounter("wal.appends")                // mutations recorded
	WALCommits         = NewCounter("wal.commits")                // group-commit flushes
	WALCheckpoints     = NewCounter("wal.checkpoints")            // snapshot + truncate
	WALReplayedRecords = NewCounter("wal.replayed_records")       // mutations re-applied at boot
	WALTornChunks      = NewCounter("wal.torn_chunks")            // chunks rejected by integrity checks
	WALCommitRecords   = NewHist("wal.commit_records", UnitCount) // records per group commit
	WALFlushLatency    = NewHist("wal.flush_latency", UnitNanos)  // one Flush
	WALRoundRollbacks  = NewCounter("wal.round_rollbacks")        // uncommitted cross-shard rounds rolled back at recovery

	// Per-shard write-ahead journals with cross-shard group commit
	// (internal/walshard). A round is one two-phase commit stamp covering
	// every participating shard's prepare flush; wal.shard.commit is the
	// per-fs-shard prepare, indexed by FsShardSlot. The gauges track each
	// shard's journal pressure: log_tail is blocks of flushed chunks,
	// ckpt_lag is flushed records the shard's snapshot is behind.
	WalShardRounds      = NewCounter("wal.shard.rounds")
	WalShardCheckpoints = NewCounter("wal.shard.checkpoints")
	WalShardCommits     = NewOpStats("wal.shard.commit", NumShardSlots)
	WalShardLogTail     = newFsShardGauges("wal.shard.log_tail")
	WalShardCkptLag     = newFsShardGauges("wal.shard.ckpt_lag")

	// Sharded kernel state machine (§4.1: multiple NR instances over
	// independent logs). Slots are the fixed shard-slot space below:
	// per-shard routed-op counts+latencies, a shard dimension for the
	// combiner passes, and per-shard log-tail / apply-lag gauges.
	ShardOps       = NewOpStats("nr.shard.ops", NumShardSlots)
	NRShardCombine = NewOpStats("nr.shard.combine", NumShardSlots)
	ShardLogTail   = newShardGauges("nr.shard.log_tail")
	ShardApplyLag  = newShardGauges("nr.shard.apply_lag")

	// Network stack (internal/netstack) and the kernel receive path
	// (internal/core netops). Receive-side drops are split by reason so
	// the backpressure budget's shedding is visible, not silent.
	NetTxFrames         = NewCounter("net.tx_frames")          // frames handed to the device
	NetRxDelivered      = NewCounter("net.rx_delivered")       // datagrams queued on a socket
	NetRxDropOverflow   = NewCounter("net.rx_drop_overflow")   // receive budget exceeded, shed
	NetRxDropClosed     = NewCounter("net.rx_drop_closed")     // delivered after socket close
	NetRxDropNoListener = NewCounter("net.rx_drop_nolistener") // no socket bound on dst port
	NetRxDropBadSum     = NewCounter("net.rx_drop_badsum")     // checksum mismatch
	NetRxDropBadFrame   = NewCounter("net.rx_drop_badframe")   // undecodable frame/datagram
	NetRecvParks        = NewCounter("net.recv_parks")         // blocking receives that parked
	NetRecvWakes        = NewCounter("net.recv_wakes")         // doorbell wakeups delivered
	NetSockBinds        = NewCounter("net.sock_binds")         // successful socket binds
	NetSockCloses       = NewCounter("net.sock_closes")        // successful socket closes

	// Kernel event ring.
	KernelTrace = NewTrace("kernel", 4096)
)

// MaxSyscallOps bounds the opcode space of the syscall OpStats. It must
// be at least the highest sys.Num* + 1 — including the internal
// cross-shard protocol ops above the wire ABI; sys's obligations assert
// this at test time so adding a syscall without growing it fails loudly
// instead of clamping silently.
const MaxSyscallOps = 96

// The shard-slot space: the per-shard metrics above are fixed vectors
// indexed by slot, with the process-state NR group occupying slots
// [0, MaxShards) and the filesystem group [MaxShards, 2*MaxShards).
// Fixed pre-registration keeps the registry bounded however many
// systems a process boots.
const (
	MaxShards     = 16
	fsSlotBase    = MaxShards
	NumShardSlots = 2 * MaxShards
)

// ProcShardSlot returns the metric slot for process-state shard i.
func ProcShardSlot(i int) uint64 { return uint64(i) }

// FsShardSlot returns the metric slot for filesystem shard i.
func FsShardSlot(i int) uint64 { return uint64(fsSlotBase + i) }

// ShardSlotName renders a shard slot ("proc3", "fs0") for RenderOps.
func ShardSlotName(slot uint64) string {
	if slot < fsSlotBase {
		return fmt.Sprintf("proc%d", slot)
	}
	return fmt.Sprintf("fs%d", slot-fsSlotBase)
}

// newShardGauges pre-registers one gauge per shard slot.
func newShardGauges(prefix string) []*Gauge {
	out := make([]*Gauge, NumShardSlots)
	for i := range out {
		out[i] = NewGauge(fmt.Sprintf("%s.%s", prefix, ShardSlotName(uint64(i))))
	}
	return out
}

// newFsShardGauges pre-registers one gauge per filesystem shard,
// indexed by fs shard number (not slot) — for metrics that only exist
// on the fs group, like the per-shard journals.
func newFsShardGauges(prefix string) []*Gauge {
	out := make([]*Gauge, MaxShards)
	for i := range out {
		out[i] = NewGauge(fmt.Sprintf("%s.fs%d", prefix, i))
	}
	return out
}

// Kernel trace event kinds.
var (
	KindSyscall   = RegisterKind("syscall")    // A=opcode, B=pid
	KindDispatch  = RegisterKind("dispatch")   // A=tid, B=core
	KindPreempt   = RegisterKind("preempt")    // A=tid
	KindPTMap     = RegisterKind("pt.map")     // A=va, B=frame
	KindPTUnmap   = RegisterKind("pt.unmap")   // A=va, B=frame
	KindFSMeta    = RegisterKind("fs.meta")    // A=op hash, B=ino
	KindLogStall  = RegisterKind("log.stall")  // A=log index, B=replica
	KindBatch     = RegisterKind("batch")      // A=batch size, B=core
	KindWALCommit = RegisterKind("wal.commit") // A=first seq, B=record count
)

// RenderSummary prints every counter and histogram of a snapshot in
// name order — the `vnros stats` body. Op families need a namer, so
// they are rendered by the caller via RenderOps.
func (s Snapshot) RenderSummary() string {
	var b strings.Builder
	state := "disabled"
	if s.Enabled {
		state = "enabled"
	}
	fmt.Fprintf(&b, "kstats (%s)\n\ncounters:\n", state)
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "  %-24s %12d\n", k, s.Counters[k])
	}
	if len(s.Gauges) > 0 {
		b.WriteString("\ngauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-24s %12d\n", k, s.Gauges[k])
		}
	}
	b.WriteString("\nhistograms:\n")
	for _, k := range sortedKeys(s.Hists) {
		h := s.Hists[k]
		if h.Count == 0 {
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(h.Render(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
