package lin

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations adds the chunked-checker VCs: windowed
// checking accepts long valid histories and still catches a violation
// planted in any window.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "lin", Name: "chunked-accepts-long-histories", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				h := generateValidHistory(r, 200)
				if err := CheckChunked(regModel(), h, 40); err != nil {
					return fmt.Errorf("valid 200-op history rejected: %w", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "lin", Name: "chunked-catches-violation-any-window", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				for trial := 0; trial < 10; trial++ {
					h := generateValidHistory(r, 150)
					// Corrupt one read in a random window to a value no
					// write ever produced.
					idx := r.Intn(len(h.Ops))
					for i := 0; i < len(h.Ops); i++ {
						j := (idx + i) % len(h.Ops)
						if !h.Ops[j].Input.write {
							h.Ops[j].Output.v = 777_777
							idx = j
							break
						}
					}
					if err := CheckChunked(regModel(), h, 30); err == nil {
						return fmt.Errorf("trial %d: corruption at op %d escaped windowed check", trial, idx)
					}
				}
				return nil
			}},
	)
}
