package lin

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/verifier"
)

// regModel is a single register with read/write/cas operations.
type regOp struct {
	kind      string // "read", "write", "cas"
	arg, arg2 int
}

type regResp struct {
	val int
	ok  bool
}

func regM() Model[int, regOp, regResp] {
	return Model[int, regOp, regResp]{
		Init: func() int { return 0 },
		Apply: func(s int, in regOp) (int, regResp) {
			switch in.kind {
			case "read":
				return s, regResp{val: s, ok: true}
			case "write":
				return in.arg, regResp{ok: true}
			case "cas":
				if s == in.arg {
					return in.arg2, regResp{ok: true}
				}
				return s, regResp{ok: false}
			}
			return s, regResp{}
		},
		Key:       func(s int) string { return fmt.Sprint(s) },
		EqualResp: func(a, b regResp) bool { return a == b },
	}
}

func op(thread int, in regOp, out regResp, inv, ret int64) Op[regOp, regResp] {
	return Op[regOp, regResp]{Thread: thread, Input: in, Output: out, Invoke: inv, Return: ret}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if err := Check(regM(), History[regOp, regResp]{}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialHistory(t *testing.T) {
	h := History[regOp, regResp]{Ops: []Op[regOp, regResp]{
		op(0, regOp{kind: "write", arg: 5}, regResp{ok: true}, 1, 2),
		op(0, regOp{kind: "read"}, regResp{val: 5, ok: true}, 3, 4),
		op(0, regOp{kind: "cas", arg: 5, arg2: 7}, regResp{ok: true}, 5, 6),
		op(0, regOp{kind: "read"}, regResp{val: 7, ok: true}, 7, 8),
	}}
	if err := Check(regM(), h); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadNotLinearizable(t *testing.T) {
	// write(5) completes strictly before read() begins, yet read
	// observed 0: no linearization exists.
	h := History[regOp, regResp]{Ops: []Op[regOp, regResp]{
		op(0, regOp{kind: "write", arg: 5}, regResp{ok: true}, 1, 2),
		op(1, regOp{kind: "read"}, regResp{val: 0, ok: true}, 3, 4),
	}}
	err := Check(regM(), h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlappingReadMayGoEitherWay(t *testing.T) {
	// read overlaps the write: observing either 0 or 5 is legal.
	for _, val := range []int{0, 5} {
		h := History[regOp, regResp]{Ops: []Op[regOp, regResp]{
			op(0, regOp{kind: "write", arg: 5}, regResp{ok: true}, 1, 4),
			op(1, regOp{kind: "read"}, regResp{val: val, ok: true}, 2, 3),
		}}
		if err := Check(regM(), h); err != nil {
			t.Fatalf("val=%d: %v", val, err)
		}
	}
}

func TestDoubleCASOnlyOneSucceeds(t *testing.T) {
	// Two concurrent cas(0->x): both claiming success is not
	// linearizable.
	bad := History[regOp, regResp]{Ops: []Op[regOp, regResp]{
		op(0, regOp{kind: "cas", arg: 0, arg2: 1}, regResp{ok: true}, 1, 4),
		op(1, regOp{kind: "cas", arg: 0, arg2: 2}, regResp{ok: true}, 2, 3),
	}}
	if err := Check(regM(), bad); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("err = %v", err)
	}
	good := History[regOp, regResp]{Ops: []Op[regOp, regResp]{
		op(0, regOp{kind: "cas", arg: 0, arg2: 1}, regResp{ok: true}, 1, 4),
		op(1, regOp{kind: "cas", arg: 0, arg2: 2}, regResp{ok: false}, 2, 3),
	}}
	if err := Check(regM(), good); err != nil {
		t.Fatal(err)
	}
}

func TestTooLarge(t *testing.T) {
	h := History[regOp, regResp]{}
	for i := 0; i < MaxOps+1; i++ {
		h.Ops = append(h.Ops, op(0, regOp{kind: "read"}, regResp{val: 0, ok: true}, int64(2*i+1), int64(2*i+2)))
	}
	if err := Check(regM(), h); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecorderOrdersTimestamps(t *testing.T) {
	rec := NewRecorder[regOp, regResp]()
	p := rec.Invoke(0, regOp{kind: "write", arg: 1})
	p.Return(regResp{ok: true})
	p2 := rec.Invoke(1, regOp{kind: "read"})
	p2.Return(regResp{val: 1, ok: true})
	h := rec.History()
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %d", len(h.Ops))
	}
	for _, o := range h.Ops {
		if o.Invoke >= o.Return {
			t.Errorf("op has Invoke %d >= Return %d", o.Invoke, o.Return)
		}
	}
	if err := Check(regM(), h); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMutexCounter records a real concurrent history from a
// mutex-protected counter and checks it linearizes.
func TestConcurrentMutexCounter(t *testing.T) {
	type incOp struct{}
	type incResp struct{ old int }
	m := Model[int, incOp, incResp]{
		Init:      func() int { return 0 },
		Apply:     func(s int, _ incOp) (int, incResp) { return s + 1, incResp{old: s} },
		Key:       func(s int) string { return fmt.Sprint(s) },
		EqualResp: func(a, b incResp) bool { return a == b },
	}
	rec := NewRecorder[incOp, incResp]()
	var mu sync.Mutex
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p := rec.Invoke(g, incOp{})
				mu.Lock()
				old := counter
				counter++
				mu.Unlock()
				p.Return(incResp{old: old})
			}
		}(g)
	}
	wg.Wait()
	if err := Check(m, rec.History()); err != nil {
		t.Fatal(err)
	}
}

// TestBrokenCounterDetected records a racy counter (lost updates) and
// expects non-linearizability for some seed. We construct the broken
// history deterministically instead of relying on a data race: two
// increments both observing old=0 and a later read observing 1.
func TestBrokenCounterDetected(t *testing.T) {
	type incOp struct{ read bool }
	type incResp struct{ val int }
	m := Model[int, incOp, incResp]{
		Init: func() int { return 0 },
		Apply: func(s int, in incOp) (int, incResp) {
			if in.read {
				return s, incResp{val: s}
			}
			return s + 1, incResp{val: s}
		},
		Key:       func(s int) string { return fmt.Sprint(s) },
		EqualResp: func(a, b incResp) bool { return a == b },
	}
	h := History[incOp, incResp]{Ops: []Op[incOp, incResp]{
		{Thread: 0, Input: incOp{}, Output: incResp{val: 0}, Invoke: 1, Return: 3},
		{Thread: 1, Input: incOp{}, Output: incResp{val: 0}, Invoke: 2, Return: 4},
		{Thread: 0, Input: incOp{read: true}, Output: incResp{val: 1}, Invoke: 5, Return: 6},
	}}
	if err := Check(m, h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("lost update not detected: %v", err)
	}
}

func TestCheckChunked(t *testing.T) {
	// 150 sequential increments split into windows must pass and thread
	// state across windows.
	type incOp struct{}
	type incResp struct{ old int }
	m := Model[int, incOp, incResp]{
		Init:      func() int { return 0 },
		Apply:     func(s int, _ incOp) (int, incResp) { return s + 1, incResp{old: s} },
		Key:       func(s int) string { return fmt.Sprint(s) },
		EqualResp: func(a, b incResp) bool { return a == b },
	}
	var h History[incOp, incResp]
	for i := 0; i < 150; i++ {
		h.Ops = append(h.Ops, Op[incOp, incResp]{
			Input: incOp{}, Output: incResp{old: i}, Invoke: int64(2*i + 1), Return: int64(2*i + 2)})
	}
	if err := CheckChunked(m, h, 50); err != nil {
		t.Fatal(err)
	}
	// Corrupt one response in the third window.
	h.Ops[120].Output = incResp{old: 999}
	if err := CheckChunked(m, h, 50); err == nil {
		t.Fatal("corrupted window passed")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 107})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
