package lin

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the linearizability checker's
// self-checks: it must accept histories generated from a known-valid
// linearization (with overlaps added) and reject histories with planted
// real-time-order or response violations. A checker that cannot
// discriminate would make the NR linearizability VCs vacuous.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "lin", Name: "accepts-generated-valid-histories", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				for trial := 0; trial < 20; trial++ {
					h := generateValidHistory(r, 4+r.Intn(10))
					if err := Check(regModel(), h); err != nil {
						return fmt.Errorf("trial %d: valid history rejected: %w", trial, err)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "lin", Name: "rejects-stale-read", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				for trial := 0; trial < 20; trial++ {
					v := 1 + r.Intn(100)
					h := History[regIn, regOut]{Ops: []Op[regIn, regOut]{
						{Input: regIn{write: true, v: v}, Output: regOut{}, Invoke: 1, Return: 2},
						{Input: regIn{}, Output: regOut{v: 0}, Invoke: 3, Return: 4},
					}}
					if err := Check(regModel(), h); !errors.Is(err, ErrNotLinearizable) {
						return fmt.Errorf("stale read of 0 after write(%d) accepted", v)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "lin", Name: "rejects-corrupted-response", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				for trial := 0; trial < 20; trial++ {
					h := generateValidHistory(r, 6)
					// Corrupt one read's output to a value never written.
					for i := range h.Ops {
						if !h.Ops[i].Input.write {
							h.Ops[i].Output.v = 999_999
							if err := Check(regModel(), h); !errors.Is(err, ErrNotLinearizable) {
								return fmt.Errorf("corrupted response accepted")
							}
							break
						}
					}
				}
				return nil
			}},
	)
}

// regIn/regOut: a single register with write(v) and read().
type regIn struct {
	write bool
	v     int
}

type regOut struct{ v int }

func regModel() Model[int, regIn, regOut] {
	return Model[int, regIn, regOut]{
		Init: func() int { return 0 },
		Apply: func(s int, in regIn) (int, regOut) {
			if in.write {
				return in.v, regOut{}
			}
			return s, regOut{v: s}
		},
		Key:       func(s int) string { return fmt.Sprint(s) },
		EqualResp: func(a, b regOut) bool { return a == b },
	}
}

// generateValidHistory builds a history by choosing a linearization
// first (sequential ops), then widening invocation windows randomly so
// the checker has real work to do. Widening preserves linearizability:
// the original order remains a witness.
func generateValidHistory(r *rand.Rand, n int) History[regIn, regOut] {
	var h History[regIn, regOut]
	state := 0
	// Each op occupies slot i at time 10*i..10*i+5; we widen later.
	for i := 0; i < n; i++ {
		in := regIn{}
		var out regOut
		if r.Intn(2) == 0 {
			in = regIn{write: true, v: r.Intn(50)}
			state = in.v
		} else {
			out = regOut{v: state}
		}
		inv := int64(10*i) + 1
		ret := inv + 5
		h.Ops = append(h.Ops, Op[regIn, regOut]{
			Thread: i % 3, Input: in, Output: out, Invoke: inv, Return: ret,
		})
	}
	// Widen windows: move invocations earlier and returns later without
	// crossing more than one neighbour, keeping at least the original
	// witness order valid.
	for i := range h.Ops {
		h.Ops[i].Invoke -= int64(r.Intn(8))
		h.Ops[i].Return += int64(r.Intn(8))
	}
	return h
}
