// Package lin checks linearizability of concurrent histories against a
// sequential model — the Go analog of IronSync's node-replication
// theorem (§4.3): "a sequential data structure replicated with NR
// remains linearizable".
//
// The checker implements the Wing–Gong search with Lowe-style
// memoization: it looks for a total order of the observed operations
// that (a) respects real-time order (an operation that returned before
// another was invoked must precede it) and (b) yields exactly the
// observed responses when replayed against the sequential model.
//
// Histories are recorded with Recorder during concurrent test runs; the
// NR verification conditions record histories of randomized workloads
// and require them to be linearizable.
package lin

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Op is one completed operation in a history.
type Op[O any, R any] struct {
	Thread int
	Input  O
	Output R
	// Invoke and Return are logical timestamps from the recorder's
	// global clock; Invoke < Return.
	Invoke int64
	Return int64
}

// History is a set of completed operations.
type History[O any, R any] struct {
	Ops []Op[O, R]
}

// Recorder builds a history from a concurrent run. Safe for concurrent
// use.
type Recorder[O any, R any] struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op[O, R]
}

// NewRecorder returns an empty recorder.
func NewRecorder[O any, R any]() *Recorder[O, R] {
	return &Recorder[O, R]{}
}

// Invoke notes the start of an operation and returns a token to pass to
// Return.
func (r *Recorder[O, R]) Invoke(thread int, in O) *PendingOp[O, R] {
	return &PendingOp[O, R]{rec: r, op: Op[O, R]{Thread: thread, Input: in, Invoke: r.clock.Add(1)}}
}

// PendingOp is an invoked-but-not-returned operation.
type PendingOp[O any, R any] struct {
	rec *Recorder[O, R]
	op  Op[O, R]
}

// Return completes the operation with its observed output.
func (p *PendingOp[O, R]) Return(out R) {
	p.op.Output = out
	p.op.Return = p.rec.clock.Add(1)
	p.rec.mu.Lock()
	p.rec.ops = append(p.rec.ops, p.op)
	p.rec.mu.Unlock()
}

// History returns the completed operations recorded so far.
func (r *Recorder[O, R]) History() History[O, R] {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := make([]Op[O, R], len(r.ops))
	copy(ops, r.ops)
	return History[O, R]{Ops: ops}
}

// Model is the sequential specification the history is checked against.
type Model[S any, O any, R any] struct {
	// Init returns the initial state.
	Init func() S
	// Apply executes one operation sequentially.
	Apply func(s S, in O) (S, R)
	// Key fingerprints a state for memoization. States with equal keys
	// must be observably equal.
	Key func(s S) string
	// EqualResp compares an observed response with the model's.
	EqualResp func(a, b R) bool
}

// MaxOps bounds the history size the exhaustive checker accepts; the
// search is exponential in the worst case and the bitmask memoization
// uses one bit per operation.
const MaxOps = 64

// ErrTooLarge is returned for histories exceeding MaxOps.
var ErrTooLarge = errors.New("lin: history too large for exhaustive check")

// ErrNotLinearizable is returned when no valid linearization exists.
var ErrNotLinearizable = errors.New("lin: history is not linearizable")

// Check searches for a linearization of h under m. It returns nil if
// one exists, ErrNotLinearizable if provably none exists, or ErrTooLarge.
func Check[S any, O any, R any](m Model[S, O, R], h History[O, R]) error {
	n := len(h.Ops)
	if n == 0 {
		return nil
	}
	if n > MaxOps {
		return fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, n, MaxOps)
	}
	ops := make([]Op[O, R], n)
	copy(ops, h.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	c := &checker[S, O, R]{m: m, ops: ops, visited: make(map[string]bool)}
	if c.search(fullMask(n), m.Init()) {
		return nil
	}
	return fmt.Errorf("%w: %d ops, no valid total order", ErrNotLinearizable, n)
}

type checker[S any, O any, R any] struct {
	m       Model[S, O, R]
	ops     []Op[O, R]
	visited map[string]bool
}

func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// search tries to linearize the operations in mask starting from state s.
func (c *checker[S, O, R]) search(mask uint64, s S) bool {
	if mask == 0 {
		return true
	}
	key := fmt.Sprintf("%x|%s", mask, c.m.Key(s))
	if c.visited[key] {
		return false
	}
	c.visited[key] = true

	// An operation is a candidate for the next linearization slot if no
	// other remaining operation returned before it was invoked.
	minReturn := int64(1) << 62
	for i := 0; i < len(c.ops); i++ {
		if mask&(1<<uint(i)) != 0 && c.ops[i].Return < minReturn {
			minReturn = c.ops[i].Return
		}
	}
	for i := 0; i < len(c.ops); i++ {
		bit := uint64(1) << uint(i)
		if mask&bit == 0 {
			continue
		}
		op := c.ops[i]
		if op.Invoke > minReturn {
			// Some remaining operation returned before this one was
			// invoked; real-time order forbids linearizing this first.
			// ops are sorted by Invoke, so no later op qualifies either.
			break
		}
		s2, resp := c.m.Apply(s, op.Input)
		if !c.m.EqualResp(resp, op.Output) {
			continue
		}
		if c.search(mask&^bit, s2) {
			return true
		}
	}
	return false
}

// CheckChunked splits a large history into windows of at most MaxOps
// operations (ordered by invocation) and checks each window against the
// model state produced by linearizing the previous windows. This is
// sound for histories whose windows do not overlap in real time beyond
// the window boundary; the recorder's workloads use barriers between
// windows to guarantee that. It returns the first failure.
func CheckChunked[S any, O any, R any](m Model[S, O, R], h History[O, R], window int) error {
	if window <= 0 || window > MaxOps {
		window = MaxOps
	}
	ops := make([]Op[O, R], len(h.Ops))
	copy(ops, h.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	state := m.Init()
	for start := 0; start < len(ops); start += window {
		end := start + window
		if end > len(ops) {
			end = len(ops)
		}
		chunk := History[O, R]{Ops: ops[start:end]}
		mm := m
		mm.Init = func() S { return state }
		if err := Check(mm, chunk); err != nil {
			return fmt.Errorf("window [%d,%d): %w", start, end, err)
		}
		// Advance the state along one witnessed linearization: replay in
		// linearized order. Re-run the search capturing the order.
		order, ok := linearization(mm, chunk)
		if !ok {
			return fmt.Errorf("window [%d,%d): %w", start, end, ErrNotLinearizable)
		}
		for _, op := range order {
			state, _ = m.Apply(state, op.Input)
		}
	}
	return nil
}

// linearization returns a witnessed linear order for a checkable history.
func linearization[S any, O any, R any](m Model[S, O, R], h History[O, R]) ([]Op[O, R], bool) {
	n := len(h.Ops)
	if n == 0 {
		return nil, true
	}
	ops := make([]Op[O, R], n)
	copy(ops, h.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	c := &witnessChecker[S, O, R]{checker[S, O, R]{m: m, ops: ops, visited: make(map[string]bool)}, nil}
	if c.search(fullMask(n), m.Init(), &c.order) {
		// order was built in reverse unwinding; reverse it.
		for i, j := 0, len(c.order)-1; i < j; i, j = i+1, j-1 {
			c.order[i], c.order[j] = c.order[j], c.order[i]
		}
		return c.order, true
	}
	return nil, false
}

type witnessChecker[S any, O any, R any] struct {
	checker[S, O, R]
	order []Op[O, R]
}

func (c *witnessChecker[S, O, R]) search(mask uint64, s S, out *[]Op[O, R]) bool {
	if mask == 0 {
		return true
	}
	key := fmt.Sprintf("%x|%s", mask, c.m.Key(s))
	if c.visited[key] {
		return false
	}
	c.visited[key] = true
	minReturn := int64(1) << 62
	for i := 0; i < len(c.ops); i++ {
		if mask&(1<<uint(i)) != 0 && c.ops[i].Return < minReturn {
			minReturn = c.ops[i].Return
		}
	}
	for i := 0; i < len(c.ops); i++ {
		bit := uint64(1) << uint(i)
		if mask&bit == 0 {
			continue
		}
		op := c.ops[i]
		if op.Invoke > minReturn {
			break
		}
		s2, resp := c.m.Apply(s, op.Input)
		if !c.m.EqualResp(resp, op.Output) {
			continue
		}
		if c.search(mask&^bit, s2, out) {
			*out = append(*out, op)
			return true
		}
	}
	return false
}
