package dev

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestConsoleWriter(t *testing.T) {
	m := machine.New(machine.Config{})
	c := NewConsole(m.Serial)
	fmt.Fprintf(c, "pid %d: %s\n", 7, "ready")
	if m.Serial.Output() != "pid 7: ready\n" {
		t.Fatalf("output = %q", m.Serial.Output())
	}
}

func TestConsoleReaderLines(t *testing.T) {
	m := machine.New(machine.Config{})
	r := NewConsoleReader(m.Serial)
	m.Serial.InjectInput([]byte("hel"))
	if _, ok := r.ReadLine(); ok {
		t.Fatal("partial line returned")
	}
	m.Serial.InjectInput([]byte("lo\nworld\n"))
	line, ok := r.ReadLine()
	if !ok || line != "hello" {
		t.Fatalf("line = %q %t", line, ok)
	}
	line, ok = r.ReadLine()
	if !ok || line != "world" {
		t.Fatalf("line2 = %q %t", line, ok)
	}
}

func TestTimerDriverTicks(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	d := NewDispatcher(m.IC)
	td, err := NewTimerDriver(m.Timer, d)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	td.Start(10, func() { fired++ })
	m.Timer.Advance(35) // 3 ticks
	d.Poll(0)
	// All three interrupts coalesce per-core into the pending bit, so at
	// least one handler run is guaranteed and seen counts dispatches.
	if fired == 0 || td.TicksSeen() == 0 {
		t.Fatalf("fired = %d seen = %d", fired, td.TicksSeen())
	}
}

func TestBlockDriverRoundTrip(t *testing.T) {
	m := machine.New(machine.Config{DiskBlocks: 32})
	drv, err := NewBlockDriver(m.Disk, m.Mem, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, machine.DiskBlockSize)
	for i := range p {
		p[i] = byte(i * 7)
	}
	if err := drv.WriteBlock(5, p); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, machine.DiskBlockSize)
	if err := drv.ReadBlock(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("round trip mismatch")
	}
	if err := drv.ReadBlock(999, got); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := drv.WriteBlock(5, p[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestBlockDriverRejectsUnalignedBounce(t *testing.T) {
	m := machine.New(machine.Config{})
	if _, err := NewBlockDriver(m.Disk, m.Mem, 0x8001); err == nil {
		t.Fatal("unaligned bounce accepted")
	}
}

func TestNICDriverDelivery(t *testing.T) {
	ma := machine.New(machine.Config{NICAddr: 1})
	mb := machine.New(machine.Config{NICAddr: 2})
	ma.NIC.AttachWire(mb.NIC.Deliver)
	mb.NIC.AttachWire(ma.NIC.Deliver)

	da := NewDispatcher(ma.IC)
	db := NewDispatcher(mb.IC)
	nda, err := NewNICDriver(ma.NIC, da)
	if err != nil {
		t.Fatal(err)
	}
	ndb, err := NewNICDriver(mb.NIC, db)
	if err != nil {
		t.Fatal(err)
	}
	var gotB [][]byte
	ndb.SetHandler(func(f []byte) { gotB = append(gotB, f) })
	var gotA [][]byte
	nda.SetHandler(func(f []byte) { gotA = append(gotA, f) })

	if err := nda.Send([]byte("syn")); err != nil {
		t.Fatal(err)
	}
	db.Poll(0)
	if len(gotB) != 1 || string(gotB[0]) != "syn" {
		t.Fatalf("b received %q", gotB)
	}
	if err := ndb.Send([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	da.Poll(0)
	if len(gotA) != 1 || string(gotA[0]) != "ack" {
		t.Fatalf("a received %q", gotA)
	}
	if nda.RxCount() != 1 || ndb.RxCount() != 1 {
		t.Fatalf("rx counts = %d, %d", nda.RxCount(), ndb.RxCount())
	}
}

func TestDispatcherBadIRQ(t *testing.T) {
	d := NewDispatcher(machine.NewInterruptController(1))
	if err := d.Handle(-1, func() {}); err == nil {
		t.Fatal("negative IRQ accepted")
	}
	if err := d.Handle(machine.NumIRQs, func() {}); err == nil {
		t.Fatal("out-of-range IRQ accepted")
	}
	if d.Count(-5) != 0 {
		t.Fatal("Count on bad irq")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 41})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
