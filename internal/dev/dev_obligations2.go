package dev

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of driver VCs: console
// byte fidelity, line-reader reassembly under fragmentation, timer
// handler replacement, and block-driver serialization (no interleaved
// request corruption).
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "dev", Name: "console-byte-fidelity", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := machine.New(machine.Config{})
				c := NewConsole(m.Serial)
				payload := make([]byte, 2000)
				r.Read(payload)
				// Write in random fragments; the UART log must be the
				// exact concatenation.
				for off := 0; off < len(payload); {
					n := 1 + r.Intn(64)
					if off+n > len(payload) {
						n = len(payload) - off
					}
					if _, err := c.Write(payload[off : off+n]); err != nil {
						return err
					}
					off += n
				}
				if got := m.Serial.Output(); got != string(payload) {
					return fmt.Errorf("console output diverged (%d vs %d bytes)", len(got), len(payload))
				}
				return nil
			}},
		verifier.Obligation{Module: "dev", Name: "console-reader-reassembles-lines", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := machine.New(machine.Config{})
				rd := NewConsoleReader(m.Serial)
				var want []string
				var stream []byte
				for i := 0; i < 30; i++ {
					line := fmt.Sprintf("line-%d-%x", i, r.Uint32())
					want = append(want, line)
					stream = append(stream, line...)
					stream = append(stream, '\n')
				}
				// Inject in random fragments, reading whenever possible.
				var got []string
				for off := 0; off < len(stream); {
					n := 1 + r.Intn(16)
					if off+n > len(stream) {
						n = len(stream) - off
					}
					m.Serial.InjectInput(stream[off : off+n])
					off += n
					for {
						line, ok := rd.ReadLine()
						if !ok {
							break
						}
						got = append(got, line)
					}
				}
				if len(got) != len(want) {
					return fmt.Errorf("reassembled %d lines, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("line %d = %q, want %q", i, got[i], want[i])
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "dev", Name: "block-driver-request-serialization", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Interleaved reads and writes through one driver (and
				// one bounce buffer) never corrupt each other: a read
				// immediately after a write to a different block returns
				// that block's bytes, not the bounce residue.
				m := machine.New(machine.Config{DiskBlocks: 64})
				drv, err := NewBlockDriver(m.Disk, m.Mem, 0x8000)
				if err != nil {
					return err
				}
				ref := map[uint64][]byte{}
				for i := 0; i < 300; i++ {
					wb := uint64(r.Intn(64))
					p := make([]byte, machine.DiskBlockSize)
					r.Read(p)
					if err := drv.WriteBlock(wb, p); err != nil {
						return err
					}
					ref[wb] = append([]byte(nil), p...)
					rb := uint64(r.Intn(64))
					q := make([]byte, machine.DiskBlockSize)
					if err := drv.ReadBlock(rb, q); err != nil {
						return err
					}
					want := ref[rb]
					if want == nil {
						want = make([]byte, machine.DiskBlockSize)
					}
					for j := range q {
						if q[j] != want[j] {
							return fmt.Errorf("iter %d: block %d byte %d corrupted after writing block %d",
								i, rb, j, wb)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "dev", Name: "timer-handler-replacement", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := machine.New(machine.Config{Cores: 1})
				d := NewDispatcher(m.IC)
				td, err := NewTimerDriver(m.Timer, d)
				if err != nil {
					return err
				}
				a, b := 0, 0
				td.Start(10, func() { a++ })
				m.Timer.Advance(10)
				d.Poll(0)
				if a == 0 {
					return fmt.Errorf("first handler never ran")
				}
				// Swapping the callback must take effect for later ticks.
				td.Start(10, func() { b++ })
				m.Timer.Advance(10)
				d.Poll(0)
				if b == 0 {
					return fmt.Errorf("replacement handler never ran")
				}
				aBefore := a
				m.Timer.Advance(10)
				d.Poll(0)
				if a != aBefore {
					return fmt.Errorf("old handler still firing after replacement")
				}
				return nil
			}},
	)
}
