// Package dev implements the device drivers of the simulated OS — the
// paper's §1 "device drivers (network controller, disk controllers,
// interrupt controller, timer, serial/graphical output)" component.
//
// Each driver wraps one internal/hw/machine device behind the interface
// the rest of the kernel consumes: the block driver implements
// fs.BlockStore over the DMA disk controller, the console driver turns
// the UART into an io.Writer, the NIC driver feeds internal/netstack,
// and the IRQ dispatcher routes interrupt-controller lines to handler
// functions.
package dev

import (
	"errors"
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/hw/mem"
)

// Dispatcher routes IRQs to registered handlers. Handlers run on the
// polling core's context (the simulation has no true asynchrony: the
// kernel loop calls Poll).
type Dispatcher struct {
	mu       sync.Mutex
	ic       *machine.InterruptController
	handlers [machine.NumIRQs]func()
	counts   [machine.NumIRQs]uint64
}

// NewDispatcher wraps an interrupt controller.
func NewDispatcher(ic *machine.InterruptController) *Dispatcher {
	return &Dispatcher{ic: ic}
}

// HasPending reports whether any core has an undelivered IRQ (one
// atomic load; see InterruptController.HasPending).
func (d *Dispatcher) HasPending() bool { return d.ic.HasPending() }

// Handle registers (or replaces) the handler for an IRQ line.
func (d *Dispatcher) Handle(irq int, h func()) error {
	if irq < 0 || irq >= machine.NumIRQs {
		return fmt.Errorf("dev: bad irq %d", irq)
	}
	d.mu.Lock()
	d.handlers[irq] = h
	d.mu.Unlock()
	return nil
}

// Poll drains pending interrupts for core, invoking handlers. Returns
// the number handled.
func (d *Dispatcher) Poll(core int) int {
	n := 0
	for {
		irq := d.ic.Pending(core)
		if irq < 0 {
			return n
		}
		d.mu.Lock()
		h := d.handlers[irq]
		d.counts[irq]++
		d.mu.Unlock()
		if h != nil {
			h()
		}
		n++
	}
}

// Count returns how many times an IRQ has been dispatched.
func (d *Dispatcher) Count(irq int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if irq < 0 || irq >= machine.NumIRQs {
		return 0
	}
	return d.counts[irq]
}

// Console is the serial console driver; it satisfies io.Writer so the
// kernel can fmt.Fprintf to it.
type Console struct {
	mu sync.Mutex
	s  *machine.Serial
}

// NewConsole wraps the UART.
func NewConsole(s *machine.Serial) *Console { return &Console{s: s} }

// Write implements io.Writer.
func (c *Console) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range p {
		c.s.TX(b)
	}
	return len(p), nil
}

// ReadLine consumes buffered input up to a newline (non-blocking; ok is
// false if no full line is available yet, with consumed bytes kept).
type lineReader struct {
	buf []byte
}

// ConsoleReader accumulates serial input into lines.
type ConsoleReader struct {
	mu sync.Mutex
	s  *machine.Serial
	lr lineReader
}

// NewConsoleReader wraps the UART input side.
func NewConsoleReader(s *machine.Serial) *ConsoleReader { return &ConsoleReader{s: s} }

// ReadLine drains available input and returns a complete line without
// its newline; ok is false if no full line has arrived.
func (r *ConsoleReader) ReadLine() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		b, any := r.s.RX()
		if !any {
			return "", false
		}
		if b == '\n' {
			line := string(r.lr.buf)
			r.lr.buf = r.lr.buf[:0]
			return line, true
		}
		r.lr.buf = append(r.lr.buf, b)
	}
}

// TimerDriver programs the platform timer and counts ticks delivered
// through the dispatcher.
type TimerDriver struct {
	t      *machine.Timer
	mu     sync.Mutex
	seen   uint64
	onTick func()
}

// NewTimerDriver registers the timer handler on the dispatcher.
func NewTimerDriver(t *machine.Timer, d *Dispatcher) (*TimerDriver, error) {
	td := &TimerDriver{t: t}
	if err := d.Handle(machine.IRQTimer, td.irq); err != nil {
		return nil, err
	}
	return td, nil
}

// Start programs periodic ticks every interval cycles and installs the
// callback (typically the scheduler's preemption hook).
func (td *TimerDriver) Start(interval uint64, onTick func()) {
	td.mu.Lock()
	td.onTick = onTick
	td.mu.Unlock()
	td.t.Program(interval)
}

func (td *TimerDriver) irq() {
	td.mu.Lock()
	td.seen++
	h := td.onTick
	td.mu.Unlock()
	if h != nil {
		h()
	}
}

// TicksSeen returns the number of timer interrupts handled.
func (td *TimerDriver) TicksSeen() uint64 {
	td.mu.Lock()
	defer td.mu.Unlock()
	return td.seen
}

// BlockDriver implements fs.BlockStore over the DMA disk controller.
// It owns a bounce buffer in simulated physical memory (real drivers
// DMA into driver-owned pages) and consumes the completion queue.
type BlockDriver struct {
	mu     sync.Mutex
	disk   *machine.Disk
	m      *mem.PhysMem
	bounce mem.PAddr
}

// ErrIO is returned for failed device requests.
var ErrIO = errors.New("dev: I/O error")

// NewBlockDriver creates a driver whose bounce buffer lives at the
// page-aligned physical address bounce.
func NewBlockDriver(disk *machine.Disk, m *mem.PhysMem, bounce mem.PAddr) (*BlockDriver, error) {
	if !bounce.IsPageAligned() {
		return nil, fmt.Errorf("dev: bounce buffer %v not page aligned", bounce)
	}
	return &BlockDriver{disk: disk, m: m, bounce: bounce}, nil
}

// BlockSize implements fs.BlockStore.
func (b *BlockDriver) BlockSize() int { return machine.DiskBlockSize }

// NumBlocks implements fs.BlockStore.
func (b *BlockDriver) NumBlocks() uint64 { return b.disk.NumBlocks() }

// submit issues one request through the bounce buffer and consumes its
// completion, matching by request ID (other completions are drained
// first, which is safe because the driver serializes requests).
func (b *BlockDriver) submit(write bool, block uint64, p []byte) error {
	// Same typed guards as every other BlockStore implementation: bad
	// index and bad buffer length are caller bugs rejected up front,
	// before anything touches the DMA bounce buffer.
	op := "read"
	if write {
		op = "write"
	}
	if err := fs.CheckBlockAccess(b, op, block, p); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if write {
		if err := b.m.Write(b.bounce, p); err != nil {
			return err
		}
	}
	id := b.disk.Submit(write, block, b.bounce)
	for {
		c, ok := b.disk.Complete()
		if !ok {
			return fmt.Errorf("%w: completion lost for request %d", ErrIO, id)
		}
		if c.ID != id {
			continue // stale completion from an aborted predecessor
		}
		if c.Err != "" {
			return fmt.Errorf("%w: %s", ErrIO, c.Err)
		}
		break
	}
	if !write {
		if err := b.m.Read(b.bounce, p); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock implements fs.BlockStore.
func (b *BlockDriver) ReadBlock(i uint64, p []byte) error { return b.submit(false, i, p) }

// WriteBlock implements fs.BlockStore.
func (b *BlockDriver) WriteBlock(i uint64, p []byte) error { return b.submit(true, i, p) }

// NICDriver drains the NIC receive queue into a handler and transmits
// frames for the netstack.
type NICDriver struct {
	mu      sync.Mutex
	nic     *machine.NIC
	onFrame func([]byte)
	rxCount uint64
}

// NewNICDriver registers the receive handler on the dispatcher.
func NewNICDriver(nic *machine.NIC, d *Dispatcher) (*NICDriver, error) {
	nd := &NICDriver{nic: nic}
	if err := d.Handle(machine.IRQNIC, nd.irq); err != nil {
		return nil, err
	}
	return nd, nil
}

// Addr returns the interface address.
func (nd *NICDriver) Addr() uint64 { return nd.nic.Addr() }

// SetHandler installs the frame receive callback (the netstack input).
func (nd *NICDriver) SetHandler(h func([]byte)) {
	nd.mu.Lock()
	nd.onFrame = h
	nd.mu.Unlock()
}

// Send transmits one frame.
func (nd *NICDriver) Send(frame []byte) error { return nd.nic.TX(frame) }

func (nd *NICDriver) irq() {
	for {
		f, ok := nd.nic.RX()
		if !ok {
			return
		}
		nd.mu.Lock()
		nd.rxCount++
		h := nd.onFrame
		nd.mu.Unlock()
		if h != nil {
			h(f)
		}
	}
}

// RxCount returns the number of frames received.
func (nd *NICDriver) RxCount() uint64 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.rxCount
}
