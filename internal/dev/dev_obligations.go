package dev

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the driver verification conditions:
// the block driver behaves exactly like the reference in-memory block
// store under random request streams, the filesystem persists through
// the real driver, and IRQ dispatch routes every line to its handler.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "dev", Name: "block-driver-matches-reference", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				m := machine.New(machine.Config{DiskBlocks: 256})
				drv, err := NewBlockDriver(m.Disk, m.Mem, 0x4000)
				if err != nil {
					return err
				}
				ref := fs.NewMemBlockStore(machine.DiskBlockSize, 256)
				for i := 0; i < 400; i++ {
					block := uint64(r.Intn(256))
					if r.Intn(2) == 0 {
						p := make([]byte, machine.DiskBlockSize)
						r.Read(p)
						e1 := drv.WriteBlock(block, p)
						e2 := ref.WriteBlock(block, p)
						if (e1 == nil) != (e2 == nil) {
							return fmt.Errorf("write %d: driver err %v, ref err %v", block, e1, e2)
						}
					} else {
						p1 := make([]byte, machine.DiskBlockSize)
						p2 := make([]byte, machine.DiskBlockSize)
						e1 := drv.ReadBlock(block, p1)
						e2 := ref.ReadBlock(block, p2)
						if (e1 == nil) != (e2 == nil) || !bytes.Equal(p1, p2) {
							return fmt.Errorf("read %d diverged", block)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "dev", Name: "fs-persists-through-disk-driver", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				m := machine.New(machine.Config{DiskBlocks: 1 << 14})
				drv, err := NewBlockDriver(m.Disk, m.Mem, 0x4000)
				if err != nil {
					return err
				}
				f := fs.New()
				ino, err := f.Create("/data")
				if err != nil {
					return err
				}
				blob := make([]byte, 10_000)
				r.Read(blob)
				if _, err := f.WriteAt(ino, 0, blob); err != nil {
					return err
				}
				if err := fs.Save(f, drv); err != nil {
					return err
				}
				g2, err := fs.Load(drv)
				if err != nil {
					return err
				}
				if !fs.Equal(f, g2) {
					return fmt.Errorf("filesystem differs after disk round trip")
				}
				return nil
			}},
		verifier.Obligation{Module: "dev", Name: "irq-dispatch-routes-all-lines", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				ic := machine.NewInterruptController(1)
				d := NewDispatcher(ic)
				hits := map[int]int{}
				for _, irq := range []int{machine.IRQTimer, machine.IRQDisk, machine.IRQNIC, machine.IRQSerial} {
					irq := irq
					if err := d.Handle(irq, func() { hits[irq]++ }); err != nil {
						return err
					}
				}
				for i := 0; i < 100; i++ {
					switch r.Intn(4) {
					case 0:
						ic.Raise(machine.IRQTimer)
					case 1:
						ic.Raise(machine.IRQDisk)
					case 2:
						ic.Raise(machine.IRQNIC)
					default:
						ic.Raise(machine.IRQSerial)
					}
					d.Poll(0)
				}
				total := 0
				for irq, n := range hits {
					if d.Count(irq) != uint64(n) {
						return fmt.Errorf("irq %d count mismatch", irq)
					}
					total += n
				}
				if total != 100 {
					return fmt.Errorf("dispatched %d of 100 interrupts", total)
				}
				return nil
			}},
	)
}
