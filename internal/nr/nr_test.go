package nr

import (
	"fmt"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/verifier"
)

// kvStore is a sequential map used as the replicated structure in tests.
type kvStore struct {
	m map[uint64]uint64
}

type kvRead struct{ key uint64 }

type kvWrite struct {
	key, val uint64
	del      bool
}

type kvResp struct {
	val uint64
	ok  bool
}

func newKV() DataStructure[kvRead, kvWrite, kvResp] {
	return &kvStore{m: make(map[uint64]uint64)}
}

func (s *kvStore) DispatchRead(op kvRead) kvResp {
	v, ok := s.m[op.key]
	return kvResp{val: v, ok: ok}
}

func (s *kvStore) DispatchWrite(op kvWrite) kvResp {
	if op.del {
		_, ok := s.m[op.key]
		delete(s.m, op.key)
		return kvResp{ok: ok}
	}
	old, ok := s.m[op.key]
	s.m[op.key] = op.val
	return kvResp{val: old, ok: ok}
}

func TestSingleThreadedBasics(t *testing.T) {
	n := New(Options{Replicas: 2}, newKV)
	c := n.MustRegister(0)
	if r := c.Execute(kvWrite{key: 1, val: 10}); r.ok {
		t.Error("first insert reported overwrite")
	}
	if r := c.ExecuteRead(kvRead{key: 1}); !r.ok || r.val != 10 {
		t.Errorf("read = %+v", r)
	}
	if r := c.Execute(kvWrite{key: 1, val: 20}); !r.ok || r.val != 10 {
		t.Errorf("overwrite resp = %+v", r)
	}
	if r := c.Execute(kvWrite{key: 1, del: true}); !r.ok {
		t.Error("delete of present key reported absent")
	}
	if r := c.ExecuteRead(kvRead{key: 1}); r.ok {
		t.Error("read after delete found key")
	}
}

func TestReadsOnOtherReplicaSeePriorWrites(t *testing.T) {
	n := New(Options{Replicas: 2}, newKV)
	w := n.MustRegister(0)
	r := n.MustRegister(1)
	for i := uint64(0); i < 100; i++ {
		w.Execute(kvWrite{key: i, val: i * 2})
		// Linearizability: a read invoked after the write returns must
		// observe it, regardless of replica.
		if got := r.ExecuteRead(kvRead{key: i}); !got.ok || got.val != i*2 {
			t.Fatalf("replica 1 read key %d = %+v", i, got)
		}
	}
}

func TestReplicasConvergeToSameState(t *testing.T) {
	n := New(Options{Replicas: 3}, newKV)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(g % 3)
			for i := 0; i < 500; i++ {
				c.Execute(kvWrite{key: uint64(i % 50), val: uint64(g*1000 + i)})
			}
		}(g)
	}
	wg.Wait()

	var states []map[uint64]uint64
	for i := 0; i < 3; i++ {
		n.Replica(i).Inspect(func(ds DataStructure[kvRead, kvWrite, kvResp]) {
			src := ds.(*kvStore).m
			cp := make(map[uint64]uint64, len(src))
			for k, v := range src {
				cp[k] = v
			}
			states = append(states, cp)
		})
	}
	for i := 1; i < 3; i++ {
		if len(states[i]) != len(states[0]) {
			t.Fatalf("replica %d has %d keys, replica 0 has %d", i, len(states[i]), len(states[0]))
		}
		for k, v := range states[0] {
			if states[i][k] != v {
				t.Fatalf("replica %d diverged at key %d: %d != %d", i, k, states[i][k], v)
			}
		}
	}
}

func TestResponsesMatchSequentialHistory(t *testing.T) {
	// Single replica, many threads: each thread increments a per-thread
	// counter key; responses (old values) must form the exact sequence
	// 0,1,2,... proving no lost or duplicated application.
	n := New(Options{Replicas: 1}, newKV)
	const threads, iters = 8, 300
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(0)
			key := uint64(g)
			for i := 0; i < iters; i++ {
				cur := c.ExecuteRead(kvRead{key: key})
				next := cur.val + 1
				if !cur.ok {
					next = 1
				}
				old := c.Execute(kvWrite{key: key, val: next})
				if old.ok && old.val != next-1 {
					errs <- fmt.Errorf("thread %d: old=%d want %d", g, old.val, next-1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := n.MustRegister(0)
	for g := 0; g < threads; g++ {
		if got := c.ExecuteRead(kvRead{key: uint64(g)}); got.val != iters {
			t.Errorf("thread %d final = %d, want %d", g, got.val, iters)
		}
	}
}

// TestLogWraparound drives more operations than the ring has slots,
// forcing garbage collection and slot reuse, across two replicas where
// one replica is mostly idle (exercising the helper path).
func TestLogWraparound(t *testing.T) {
	n := New(Options{Replicas: 2, LogSize: 64}, newKV)
	c := n.MustRegister(0)
	idle := n.MustRegister(1)
	for i := 0; i < 10_000; i++ {
		c.Execute(kvWrite{key: uint64(i % 7), val: uint64(i)})
	}
	if got := idle.ExecuteRead(kvRead{key: 6}); !got.ok {
		t.Fatal("idle replica read failed after wraparound")
	}
	if n.Tail() != 10_000 {
		t.Errorf("tail = %d, want 10000", n.Tail())
	}
}

func TestConcurrentWraparoundBothReplicas(t *testing.T) {
	n := New(Options{Replicas: 2, LogSize: 128}, newKV)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(g % 2)
			for i := 0; i < 2_000; i++ {
				c.Execute(kvWrite{key: uint64(g), val: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	c := n.MustRegister(0)
	for g := 0; g < 4; g++ {
		if got := c.ExecuteRead(kvRead{key: uint64(g)}); !got.ok || got.val != 1999 {
			t.Errorf("key %d = %+v, want 1999", g, got)
		}
	}
}

func TestCombinerBatches(t *testing.T) {
	n := New(Options{Replicas: 1}, newKV)
	const threads = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(0)
			<-start
			for i := 0; i < 200; i++ {
				c.Execute(kvWrite{key: uint64(g), val: uint64(i)})
			}
		}(g)
	}
	close(start)
	wg.Wait()
	ops, batches := n.Replica(0).CombinerStats()
	if ops != threads*200 {
		t.Fatalf("combined ops = %d, want %d", ops, threads*200)
	}
	if batches == 0 || batches > ops {
		t.Fatalf("batches = %d implausible for %d ops", batches, ops)
	}
	t.Logf("flat combining: %d ops in %d batches (%.1f ops/batch)",
		ops, batches, float64(ops)/float64(batches))
}

func TestRegisterBounds(t *testing.T) {
	n := New(Options{Replicas: 1}, newKV)
	for i := 0; i < MaxThreadsPerReplica; i++ {
		if _, err := n.Register(0); err != nil {
			t.Fatalf("register %d failed: %v", i, err)
		}
	}
	if _, err := n.Register(0); err == nil {
		t.Fatal("registration beyond bound succeeded")
	}
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded(4, Options{Replicas: 2}, newKV)
	th, err := s.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		th.Execute(k, kvWrite{key: k, val: k + 1})
	}
	for k := uint64(0); k < 100; k++ {
		if got := th.ExecuteRead(k, kvRead{key: k}); !got.ok || got.val != k+1 {
			t.Fatalf("key %d = %+v", k, got)
		}
	}
}

func TestShardedSpreadsKeys(t *testing.T) {
	s := NewSharded(4, Options{Replicas: 1}, newKV)
	counts := make([]int, 4)
	for k := uint64(0); k < 1000; k++ {
		counts[s.shardOf(k)]++
	}
	for i, c := range counts {
		if c < 100 {
			t.Errorf("shard %d got only %d/1000 keys", i, c)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	n := New(Options{}, newKV)
	if n.NumReplicas() != 1 {
		t.Errorf("default replicas = %d", n.NumReplicas())
	}
	s := NewSharded(0, Options{}, newKV)
	if s.NumShards() != 1 {
		t.Errorf("default shards = %d", s.NumShards())
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 83})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
	if len(rep.Results) < 10 {
		t.Fatalf("only %d nr VCs", len(rep.Results))
	}
}
