package nr

import (
	"sync"
	"testing"
)

// TestShardedStress hammers a Sharded group from many goroutines mixing
// keyed writes, keyed reads, explicit-shard ops, batches, and
// register/deregister churn — the pattern the sharded kernel's handlers
// produce. Run under -race in CI; correctness check is per-key
// monotonicity plus final replica agreement on every shard.
func TestShardedStress(t *testing.T) {
	const (
		shards   = 4
		replicas = 2
		workers  = 8
		iters    = 400
	)
	s := NewShardedFunc(shards,
		func(int) Options { return Options{Replicas: replicas, LogSize: 256} },
		func(int) DataStructure[kvRead, kvWrite, kvResp] { return newKV() })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Register/deregister churn: a fresh context every few
				// hundred ops, like short-lived process handlers.
				ctx, err := s.Register(w % replicas)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 4; j++ {
					// Keyed range disjoint from the explicit-shard keys below.
					key := uint64(10_000 + w*10_000 + i*4 + j)
					ctx.Execute(key, kvWrite{key: key, val: key + 1})
					if r := ctx.ExecuteRead(key, kvRead{key: key}); !r.ok || r.val != key+1 {
						t.Errorf("worker %d: read-own-write key %d = %+v", w, key, r)
						ctx.Deregister()
						return
					}
				}
				// Explicit-shard ops (the router's broadcast path).
				sh := i % shards
				ctx.ExecuteOn(sh, kvWrite{key: uint64(w), val: uint64(i)})
				ctx.ExecuteReadOn(sh, kvRead{key: uint64(w)})
				if i%16 == 0 {
					ops := []kvWrite{
						{key: uint64(w*7 + 1), val: uint64(i)},
						{key: uint64(w*7 + 2), val: uint64(i)},
					}
					if resps := ctx.ExecuteBatchOn(sh, ops); len(resps) != len(ops) {
						t.Errorf("batch returned %d resps for %d ops", len(resps), len(ops))
					}
				}
				ctx.Deregister()
			}
		}()
	}
	wg.Wait()
	// Every shard's replicas must agree after the storm.
	for i := 0; i < shards; i++ {
		var states []map[uint64]uint64
		for r := 0; r < replicas; r++ {
			s.Shard(i).Replica(r).Inspect(func(d DataStructure[kvRead, kvWrite, kvResp]) {
				m := d.(*kvStore).m
				cp := make(map[uint64]uint64, len(m))
				for k, v := range m {
					cp[k] = v
				}
				states = append(states, cp)
			})
		}
		for r := 1; r < replicas; r++ {
			if len(states[r]) != len(states[0]) {
				t.Fatalf("shard %d: replica %d has %d keys, replica 0 has %d",
					i, r, len(states[r]), len(states[0]))
			}
			for k, v := range states[0] {
				if states[r][k] != v {
					t.Fatalf("shard %d: replica %d diverged at key %d: %d != %d",
						i, r, k, states[r][k], v)
				}
			}
		}
	}
}

// TestShardOfDistribution checks the Fibonacci-hash shard routing:
// deterministic, in range, and roughly uniform over sequential keys —
// the shapes PIDs and inode numbers actually take.
func TestShardOfDistribution(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		s := NewShardedFunc(shards,
			func(int) Options { return Options{Replicas: 1, LogSize: 64} },
			func(int) DataStructure[kvRead, kvWrite, kvResp] { return newKV() })
		const keys = 4096
		counts := make([]int, shards)
		for k := uint64(1); k <= keys; k++ {
			sh := s.ShardOf(k)
			if sh < 0 || sh >= shards {
				t.Fatalf("shards=%d: ShardOf(%d) = %d out of range", shards, k, sh)
			}
			if sh != s.ShardOf(k) {
				t.Fatalf("shards=%d: ShardOf(%d) not deterministic", shards, k)
			}
			counts[sh]++
		}
		fair := keys / shards
		for i, c := range counts {
			if c == 0 {
				t.Errorf("shards=%d: shard %d never chosen over %d sequential keys", shards, i, keys)
			}
			if c > 2*fair {
				t.Errorf("shards=%d: shard %d got %d of %d keys (fair share %d)",
					shards, i, c, keys, fair)
			}
		}
	}
}
