package nr

// Sharded partitions the state space over several independent NR
// instances, each with its own log — the paper's "NrOS shards kernel
// state into multiple NR instances and replicates them over independent
// logs" (§4.1). Operations carry a shard key; cross-shard consistency is
// the caller's concern (NrOS shards state that is naturally partitioned,
// e.g. the file-system namespace by inode).
type Sharded[Rd any, Wr any, Resp any] struct {
	shards []*NR[Rd, Wr, Resp]
}

// ShardedThread is a thread's handle across every shard.
type ShardedThread[Rd any, Wr any, Resp any] struct {
	s    *Sharded[Rd, Wr, Resp]
	ctxs []*ThreadContext[Rd, Wr, Resp]
}

// NewSharded creates n independent NR instances.
func NewSharded[Rd any, Wr any, Resp any](shards int, opts Options, create func() DataStructure[Rd, Wr, Resp]) *Sharded[Rd, Wr, Resp] {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded[Rd, Wr, Resp]{}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, New(opts, create))
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded[Rd, Wr, Resp]) NumShards() int { return len(s.shards) }

// Shard returns shard i.
func (s *Sharded[Rd, Wr, Resp]) Shard(i int) *NR[Rd, Wr, Resp] { return s.shards[i] }

// Register attaches a thread to replica `replica` of every shard. On
// failure it releases the slots already claimed on earlier shards, so a
// failing registration leaves no residue — repeated failures cannot
// exhaust MaxThreadsPerReplica.
func (s *Sharded[Rd, Wr, Resp]) Register(replica int) (*ShardedThread[Rd, Wr, Resp], error) {
	t := &ShardedThread[Rd, Wr, Resp]{s: s}
	for _, sh := range s.shards {
		c, err := sh.Register(replica)
		if err != nil {
			for _, prev := range t.ctxs {
				prev.Deregister()
			}
			return nil, err
		}
		t.ctxs = append(t.ctxs, c)
	}
	return t, nil
}

// Deregister releases the thread's slot on every shard. The same
// quiescence rule as ThreadContext.Deregister applies.
func (t *ShardedThread[Rd, Wr, Resp]) Deregister() {
	for _, c := range t.ctxs {
		c.Deregister()
	}
}

// shardOf maps a key to a shard index.
func (s *Sharded[Rd, Wr, Resp]) shardOf(key uint64) int {
	// Fibonacci hashing spreads sequential keys (inode numbers, page
	// indices) across shards.
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(len(s.shards)))
}

// Execute runs a mutating operation on the shard owning key.
func (t *ShardedThread[Rd, Wr, Resp]) Execute(key uint64, op Wr) Resp {
	return t.ctxs[t.s.shardOf(key)].Execute(op)
}

// ExecuteRead runs a read-only operation on the shard owning key.
func (t *ShardedThread[Rd, Wr, Resp]) ExecuteRead(key uint64, op Rd) Resp {
	return t.ctxs[t.s.shardOf(key)].ExecuteRead(op)
}
