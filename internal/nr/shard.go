package nr

// Sharded partitions the state space over several independent NR
// instances, each with its own log — the paper's "NrOS shards kernel
// state into multiple NR instances and replicates them over independent
// logs" (§4.1). Operations carry a shard key; cross-shard consistency is
// the caller's concern (NrOS shards state that is naturally partitioned,
// e.g. the file-system namespace by inode).
type Sharded[Rd any, Wr any, Resp any] struct {
	shards []*NR[Rd, Wr, Resp]
}

// ShardedThread is a thread's handle across every shard.
type ShardedThread[Rd any, Wr any, Resp any] struct {
	s    *Sharded[Rd, Wr, Resp]
	ctxs []*ThreadContext[Rd, Wr, Resp]
}

// NewSharded creates n independent NR instances.
func NewSharded[Rd any, Wr any, Resp any](shards int, opts Options, create func() DataStructure[Rd, Wr, Resp]) *Sharded[Rd, Wr, Resp] {
	return NewShardedFunc(shards,
		func(int) Options { return opts },
		func(int) DataStructure[Rd, Wr, Resp] { return create() })
}

// NewShardedFunc creates n independent NR instances with per-shard
// options and constructors — each shard can size its own log ring and
// carry its own stats tag, and each shard's replicas can draw from
// disjoint resources (e.g. page-table frame regions).
func NewShardedFunc[Rd any, Wr any, Resp any](shards int, opts func(shard int) Options, create func(shard int) DataStructure[Rd, Wr, Resp]) *Sharded[Rd, Wr, Resp] {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded[Rd, Wr, Resp]{}
	for i := 0; i < shards; i++ {
		i := i
		s.shards = append(s.shards, New(opts(i), func() DataStructure[Rd, Wr, Resp] { return create(i) }))
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded[Rd, Wr, Resp]) NumShards() int { return len(s.shards) }

// Shard returns shard i.
func (s *Sharded[Rd, Wr, Resp]) Shard(i int) *NR[Rd, Wr, Resp] { return s.shards[i] }

// Register attaches a thread to replica `replica` of every shard. On
// failure it releases the slots already claimed on earlier shards, so a
// failing registration leaves no residue — repeated failures cannot
// exhaust MaxThreadsPerReplica.
func (s *Sharded[Rd, Wr, Resp]) Register(replica int) (*ShardedThread[Rd, Wr, Resp], error) {
	t := &ShardedThread[Rd, Wr, Resp]{s: s}
	for _, sh := range s.shards {
		c, err := sh.Register(replica)
		if err != nil {
			for _, prev := range t.ctxs {
				prev.Deregister()
			}
			return nil, err
		}
		t.ctxs = append(t.ctxs, c)
	}
	return t, nil
}

// Deregister releases the thread's slot on every shard. The same
// quiescence rule as ThreadContext.Deregister applies.
func (t *ShardedThread[Rd, Wr, Resp]) Deregister() {
	for _, c := range t.ctxs {
		c.Deregister()
	}
}

// shardOf maps a key to a shard index.
func (s *Sharded[Rd, Wr, Resp]) shardOf(key uint64) int {
	// Fibonacci hashing spreads sequential keys (inode numbers, page
	// indices) across shards.
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(len(s.shards)))
}

// ShardOf exposes the key → shard map, so callers can address the same
// shard an Execute(key, ...) would (cross-shard protocols, isolation
// checks).
func (s *Sharded[Rd, Wr, Resp]) ShardOf(key uint64) int { return s.shardOf(key) }

// Execute runs a mutating operation on the shard owning key.
func (t *ShardedThread[Rd, Wr, Resp]) Execute(key uint64, op Wr) Resp {
	return t.ctxs[t.s.shardOf(key)].Execute(op)
}

// ExecuteRead runs a read-only operation on the shard owning key.
func (t *ShardedThread[Rd, Wr, Resp]) ExecuteRead(key uint64, op Rd) Resp {
	return t.ctxs[t.s.shardOf(key)].ExecuteRead(op)
}

// ExecuteOn runs a mutating operation on an explicit shard index —
// the escape hatch cross-shard protocols use to address a step at a
// specific shard (e.g. the process tree pinned to shard 0, or a
// namespace broadcast visiting every shard in order).
func (t *ShardedThread[Rd, Wr, Resp]) ExecuteOn(shard int, op Wr) Resp {
	return t.ctxs[shard].Execute(op)
}

// ExecuteReadOn runs a read-only operation on an explicit shard index.
func (t *ShardedThread[Rd, Wr, Resp]) ExecuteReadOn(shard int, op Rd) Resp {
	return t.ctxs[shard].ExecuteRead(op)
}

// ExecuteBatchOn runs a vector of mutating operations contiguously on an
// explicit shard's log (PR 2's ExecuteBatch semantics, per shard: the
// half-ring invariant is enforced by each shard's own Register bound and
// MaxBatchOps, so splitting the log across shards leaves the invariant
// intact shard-by-shard).
func (t *ShardedThread[Rd, Wr, Resp]) ExecuteBatchOn(shard int, ops []Wr) []Resp {
	return t.ctxs[shard].ExecuteBatch(ops)
}
