package nr

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressSmallLogConcurrentMixed is the NR stress test: a
// deliberately tiny log ring (so waitForSpace reclamation runs
// constantly), two replicas, and concurrent writers, readers, and
// late Register calls. The final check is the NR correctness
// condition: after quiescence every replica's state is identical.
// Run under -race; it exercises the combiner, helper, and log-
// wraparound paths simultaneously.
func TestStressSmallLogConcurrentMixed(t *testing.T) {
	const (
		replicas = 2
		logSize  = 64
		writers  = 6
		readers  = 4
		iters    = 2_000
		keySpace = 31
		lateRegs = 8
	)
	n := New(Options{Replicas: replicas, LogSize: logSize}, newKV)

	var wg sync.WaitGroup
	start := make(chan struct{})
	var writesDone atomic.Uint64

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(g % replicas)
			<-start
			for i := 0; i < iters; i++ {
				c.Execute(kvWrite{key: uint64(i % keySpace), val: uint64(g)<<32 | uint64(i)})
				writesDone.Add(1)
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.MustRegister(g % replicas)
			<-start
			for i := 0; i < iters; i++ {
				c.ExecuteRead(kvRead{key: uint64(i % keySpace)})
			}
		}(g)
	}
	// Late registrations racing against active combiners, each issuing
	// a few ops then deregistering (slot reuse under load).
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for r := 0; r < lateRegs; r++ {
			c, err := n.Register(r % replicas)
			if err != nil {
				t.Errorf("late register %d: %v", r, err)
				return
			}
			for i := 0; i < 50; i++ {
				c.Execute(kvWrite{key: uint64(keySpace + r), val: uint64(i)})
			}
			c.Deregister()
		}
	}()

	close(start)
	wg.Wait()

	if got := writesDone.Load(); got != writers*iters {
		t.Fatalf("writes completed = %d, want %d", got, writers*iters)
	}
	if wantTail := uint64(writers*iters + lateRegs*50); n.Tail() != wantTail {
		t.Fatalf("log tail = %d, want %d", n.Tail(), wantTail)
	}

	// Cross-replica state equality via Inspect.
	var states []map[uint64]uint64
	for i := 0; i < replicas; i++ {
		n.Replica(i).Inspect(func(ds DataStructure[kvRead, kvWrite, kvResp]) {
			src := ds.(*kvStore).m
			cp := make(map[uint64]uint64, len(src))
			for k, v := range src {
				cp[k] = v
			}
			states = append(states, cp)
		})
	}
	for i := 1; i < replicas; i++ {
		if len(states[i]) != len(states[0]) {
			t.Fatalf("replica %d has %d keys, replica 0 has %d",
				i, len(states[i]), len(states[0]))
		}
		for k, v := range states[0] {
			if states[i][k] != v {
				t.Fatalf("replica %d diverged at key %d: %#x != %#x", i, k, states[i][k], v)
			}
		}
	}
}

// TestShardedRegisterUnwindsOnFailure is the regression test for the
// slot leak: Sharded.Register used to abandon slots claimed on shards
// 0..k-1 when shard k failed, so repeated failures permanently
// exhausted MaxThreadsPerReplica on the earlier shards.
func TestShardedRegisterUnwindsOnFailure(t *testing.T) {
	// Small log ring: at most 8 threads per replica ((8+1)*2 > 16).
	s := NewSharded(3, Options{Replicas: 1, LogSize: 16}, newKV)
	capPerShard := 0
	var hold []*ThreadContext[kvRead, kvWrite, kvResp]
	for {
		c, err := s.Shard(2).Register(0)
		if err != nil {
			break
		}
		hold = append(hold, c)
		capPerShard++
	}
	if capPerShard == 0 {
		t.Fatal("no capacity at all")
	}

	// Every Sharded.Register now fails on shard 2. Before the fix, each
	// failure leaked one slot on shards 0 and 1; capPerShard+1 failures
	// would exhaust them even after shard 2 freed up.
	for i := 0; i < capPerShard+2; i++ {
		if _, err := s.Register(0); err == nil {
			t.Fatal("Sharded.Register succeeded with shard 2 full")
		}
	}
	for sh := 0; sh < 2; sh++ {
		if got := s.Shard(sh).NumThreads(0); got != 0 {
			t.Fatalf("shard %d leaked %d slots after failed registrations", sh, got)
		}
	}

	// Free shard 2 and confirm full registration works again.
	for _, c := range hold {
		c.Deregister()
	}
	th, err := s.Register(0)
	if err != nil {
		t.Fatalf("register after unwind: %v", err)
	}
	for k := uint64(0); k < 20; k++ {
		th.Execute(k, kvWrite{key: k, val: k})
	}
	for k := uint64(0); k < 20; k++ {
		if got := th.ExecuteRead(k, kvRead{key: k}); !got.ok || got.val != k {
			t.Fatalf("key %d = %+v after re-registration", k, got)
		}
	}
	th.Deregister()
}

// TestDeregisterReusesSlots pins the freelist behavior: register/
// deregister cycles far beyond MaxThreadsPerReplica must keep working,
// and a reused slot must deliver responses to its new owner.
func TestDeregisterReusesSlots(t *testing.T) {
	n := New(Options{Replicas: 1}, newKV)
	for i := 0; i < 2*MaxThreadsPerReplica; i++ {
		c, err := n.Register(0)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if r := c.Execute(kvWrite{key: 1, val: uint64(i)}); i > 0 && (!r.ok || r.val != uint64(i-1)) {
			t.Fatalf("cycle %d: stale response %+v", i, r)
		}
		c.Deregister()
	}
	if got := n.NumThreads(0); got != 0 {
		t.Fatalf("active threads = %d after balanced cycles", got)
	}
}

func TestDoubleDeregisterPanics(t *testing.T) {
	n := New(Options{Replicas: 1}, newKV)
	c := n.MustRegister(0)
	c.Deregister()
	defer func() {
		if recover() == nil {
			t.Fatal("double Deregister did not panic")
		}
	}()
	c.Deregister()
}
