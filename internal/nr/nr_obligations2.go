package nr

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of NR VCs: reads never
// miss their linearization horizon under concurrent writers, combiner
// batching accounts for every operation exactly once, registration
// bounds are enforced, and an idle replica's state is reconstructible
// at any time (the helper path keeps it serviceable).
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "nr", Name: "read-horizon-respected-under-writers", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error {
				// A reader that observed its own write N must observe at
				// least N on every subsequent read while another thread
				// keeps writing (monotone reads across replicas).
				n := New(Options{Replicas: 2}, newOblKV)
				stop := make(chan struct{})
				var writerErr error
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := n.MustRegister(0)
					for i := uint64(1); ; i++ {
						select {
						case <-stop:
							return
						default:
							c.Execute(oblW{k: 1, v: i})
						}
					}
				}()
				rd := n.MustRegister(1)
				var last uint64
				for i := 0; i < 2000; i++ {
					got := rd.ExecuteRead(oblR{k: 1})
					if got.ok && got.v < last {
						writerErr = fmt.Errorf("reads went backwards: %d after %d", got.v, last)
						break
					}
					if got.ok {
						last = got.v
					}
				}
				close(stop)
				wg.Wait()
				return writerErr
			}},
		verifier.Obligation{Module: "nr", Name: "combiner-accounts-every-op", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				n := New(Options{Replicas: 2}, newOblKV)
				const threads, iters = 4, 500
				var wg sync.WaitGroup
				var issued atomic.Uint64
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						c := n.MustRegister(t % 2)
						for i := 0; i < iters; i++ {
							c.Execute(oblW{k: uint64(t), v: uint64(i)})
							issued.Add(1)
						}
					}(t)
				}
				wg.Wait()
				var combined uint64
				for i := 0; i < 2; i++ {
					ops, _ := n.Replica(i).CombinerStats()
					combined += ops
				}
				if combined != issued.Load() {
					return fmt.Errorf("combined %d ops, issued %d", combined, issued.Load())
				}
				if n.Tail() != issued.Load() {
					return fmt.Errorf("log tail %d, issued %d", n.Tail(), issued.Load())
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "registration-bounds", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				n := New(Options{Replicas: 1}, newOblKV)
				for i := 0; i < MaxThreadsPerReplica; i++ {
					if _, err := n.Register(0); err != nil {
						return fmt.Errorf("register %d: %v", i, err)
					}
				}
				if _, err := n.Register(0); err == nil {
					return fmt.Errorf("registration beyond %d accepted", MaxThreadsPerReplica)
				}
				// Tiny logs reject thread counts they cannot sustain.
				small := New(Options{Replicas: 1, LogSize: 8}, newOblKV)
				accepted := 0
				for i := 0; i < 16; i++ {
					if _, err := small.Register(0); err == nil {
						accepted++
					}
				}
				if accepted*2 > 8 {
					return fmt.Errorf("8-slot log accepted %d threads (batch could fill the ring)", accepted)
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "idle-replica-always-serviceable", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Writers hammer replica 0 through several ring laps; a
				// reader that registers late on replica 1 must observe a
				// complete, consistent state immediately.
				n := New(Options{Replicas: 2, LogSize: 128}, newOblKV)
				c := n.MustRegister(0)
				const keys = 10
				for lap := 0; lap < 50; lap++ {
					for k := uint64(0); k < keys; k++ {
						c.Execute(oblW{k: k, v: uint64(lap)})
					}
				}
				late := n.MustRegister(1)
				for k := uint64(0); k < keys; k++ {
					got := late.ExecuteRead(oblR{k: k})
					if !got.ok || got.v != 49 {
						return fmt.Errorf("late reader key %d = %+v, want 49", k, got)
					}
				}
				return nil
			}},
	)
}
