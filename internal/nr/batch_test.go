package nr

import (
	"sync"
	"testing"
)

func TestExecuteBatchOrderedResponses(t *testing.T) {
	n := New(Options{Replicas: 2}, newKV)
	c := n.MustRegister(0)
	ops := make([]kvWrite, 64)
	for i := range ops {
		ops[i] = kvWrite{key: 7, val: uint64(i + 1)}
	}
	resps := c.ExecuteBatch(ops)
	if len(resps) != len(ops) {
		t.Fatalf("got %d responses for %d ops", len(resps), len(ops))
	}
	// Each overwrite must observe the previous op of the same batch:
	// responses are in submission order and the batch is contiguous.
	if resps[0].ok {
		t.Error("first insert reported overwrite")
	}
	for i := 1; i < len(resps); i++ {
		if !resps[i].ok || resps[i].val != uint64(i) {
			t.Fatalf("resp[%d] = %+v, want previous value %d", i, resps[i], i)
		}
	}
	if r := c.ExecuteRead(kvRead{key: 7}); !r.ok || r.val != uint64(len(ops)) {
		t.Errorf("final read = %+v, want %d", r, len(ops))
	}
}

func TestExecuteBatchEmptyAndSingle(t *testing.T) {
	n := New(Options{Replicas: 1}, newKV)
	c := n.MustRegister(0)
	if resps := c.ExecuteBatch(nil); resps != nil {
		t.Errorf("empty batch returned %v", resps)
	}
	resps := c.ExecuteBatch([]kvWrite{{key: 1, val: 5}})
	if len(resps) != 1 || resps[0].ok {
		t.Errorf("single-op batch resps = %+v", resps)
	}
	// Interleave with scalar Execute on the same context: the slot must
	// switch cleanly between batch and scalar mode.
	if r := c.Execute(kvWrite{key: 1, val: 6}); !r.ok || r.val != 5 {
		t.Errorf("scalar after batch = %+v", r)
	}
}

func TestExecuteBatchLargerThanMaxBatchOps(t *testing.T) {
	// A tiny ring forces MaxBatchOps down to 1, so a 50-op batch must be
	// split into 50 contiguous runs and still complete with ordered
	// responses.
	n := New(Options{Replicas: 2, LogSize: 64}, newKV)
	if got := n.MaxBatchOps(); got != 1 {
		t.Fatalf("MaxBatchOps = %d with 64-slot ring, want 1", got)
	}
	c := n.MustRegister(0)
	ops := make([]kvWrite, 50)
	for i := range ops {
		ops[i] = kvWrite{key: uint64(i), val: uint64(i) * 3}
	}
	resps := c.ExecuteBatch(ops)
	if len(resps) != len(ops) {
		t.Fatalf("got %d responses", len(resps))
	}
	r := n.MustRegister(1)
	for i := range ops {
		if got := r.ExecuteRead(kvRead{key: uint64(i)}); !got.ok || got.val != uint64(i)*3 {
			t.Fatalf("key %d = %+v", i, got)
		}
	}
}

func TestExecuteBatchConcurrent(t *testing.T) {
	const (
		threads = 8
		rounds  = 40
		batch   = 16
	)
	n := New(Options{Replicas: 2}, newKV)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := n.MustRegister(th % n.NumReplicas())
			for r := 0; r < rounds; r++ {
				ops := make([]kvWrite, batch)
				for i := range ops {
					// Distinct key per (thread, round, index): the
					// response of every insert must report "absent".
					ops[i] = kvWrite{
						key: uint64(th)<<32 | uint64(r)<<16 | uint64(i),
						val: uint64(th),
					}
				}
				for i, resp := range c.ExecuteBatch(ops) {
					if resp.ok {
						t.Errorf("thread %d round %d op %d: fresh key reported present", th, r, i)
						return
					}
				}
			}
		}(th)
	}
	wg.Wait()
	// All replicas converge on the same state.
	c := n.MustRegister(0)
	total := 0
	for th := 0; th < threads; th++ {
		for r := 0; r < rounds; r++ {
			for i := 0; i < batch; i++ {
				key := uint64(th)<<32 | uint64(r)<<16 | uint64(i)
				if got := c.ExecuteRead(kvRead{key: key}); !got.ok || got.val != uint64(th) {
					t.Fatalf("key %x = %+v", key, got)
				}
				total++
			}
		}
	}
	if total != threads*rounds*batch {
		t.Fatalf("checked %d keys", total)
	}
}

func TestExecuteBatchInterleavedWithScalars(t *testing.T) {
	// Batch submitters and scalar submitters share the log; a batch's
	// internal ordering must survive foreign traffic.
	n := New(Options{Replicas: 2}, newKV)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := n.MustRegister(1)
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Execute(kvWrite{key: 1 << 40, val: i})
		}
	}()
	c := n.MustRegister(0)
	for r := 0; r < 50; r++ {
		ops := make([]kvWrite, 8)
		for i := range ops {
			ops[i] = kvWrite{key: 99, val: uint64(r*8 + i + 1)}
		}
		resps := c.ExecuteBatch(ops)
		// Within the batch, op i+1 must observe op i: the run is
		// contiguous in the log even with a concurrent scalar writer.
		for i := 1; i < len(resps); i++ {
			if !resps[i].ok || resps[i].val != uint64(r*8+i) {
				t.Fatalf("round %d resp[%d] = %+v", r, i, resps[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}
