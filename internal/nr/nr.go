package nr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/obs"
)

// DataStructure is the sequential data structure being replicated. Rd
// and Wr are the read-only and mutating operation types, Resp the
// response type. Implementations need no internal synchronization — NR
// provides it — but must be deterministic: applying the same operations
// in the same order to two copies must yield equal states and responses,
// since that is what keeps replicas consistent.
type DataStructure[Rd any, Wr any, Resp any] interface {
	// DispatchRead executes a read-only operation.
	DispatchRead(op Rd) Resp
	// DispatchWrite executes a mutating operation.
	DispatchWrite(op Wr) Resp
}

// MaxThreadsPerReplica bounds the flat-combining slots per replica.
const MaxThreadsPerReplica = 256

// opState values for a thread context's pending operation.
const (
	slotEmpty uint32 = iota
	slotPending
	slotDone
)

// ThreadContext is a per-thread handle onto one replica. Each OS "core"
// registers once and then funnels its operations through the handle;
// the combiner uses the slot to pick up pending writes and deposit
// responses (flat combining).
type ThreadContext[Rd any, Wr any, Resp any] struct {
	r    *Replica[Rd, Wr, Resp]
	id   uint32
	op   Wr
	resp Resp
	st   atomic.Uint32
	// ops/resps/filled carry a multi-op submission (ExecuteBatch): when
	// ops is non-nil the slot contributes len(ops) contiguous log
	// entries instead of one, and combiners deposit responses in log
	// order at resps[filled++], marking slotDone only when the last one
	// lands. All three are written by the owner before the slotPending
	// store and otherwise touched only under r.combiner, so the same
	// release/acquire edges that protect op/resp protect them.
	ops    []Wr
	resps  []Resp
	filled uint32
	// deregistered marks a released slot (guarded by r.mu); it exists
	// only to catch double-Deregister misuse.
	deregistered bool
}

// numOps returns how many log entries the slot's pending submission
// occupies. Callers must have acquired visibility via st (slotPending)
// or r.combiner.
func (c *ThreadContext[Rd, Wr, Resp]) numOps() uint64 {
	if c.ops != nil {
		return uint64(len(c.ops))
	}
	return 1
}

// Replica is one node-local copy of the data structure plus the
// combiner machinery.
type Replica[Rd any, Wr any, Resp any] struct {
	nr *NR[Rd, Wr, Resp]
	id uint32

	// lock protects ds: readers hold RLock, the combiner holds Lock
	// while applying log entries.
	lock sync.RWMutex
	ds   DataStructure[Rd, Wr, Resp]

	// combiner serializes log application for this replica.
	combiner sync.Mutex

	// applied is the replica's applied tail: all log entries below it
	// have been executed against ds.
	applied atomic.Uint64

	mu   sync.Mutex // guards ctxs and free registration state
	ctxs []*ThreadContext[Rd, Wr, Resp]
	// free holds slot ids released by Deregister, reused by the next
	// Register so repeated register/deregister cycles (or unwound
	// partial Sharded registrations) cannot exhaust the thread bound.
	free []uint32

	// combined counts batched operations, for the flat-combining stats
	// exposed to the ablation bench.
	combined atomic.Uint64
	batches  atomic.Uint64
}

// NR is a node-replicated instance of a sequential data structure.
type NR[Rd any, Wr any, Resp any] struct {
	log      *log[Wr]
	replicas []*Replica[Rd, Wr, Resp]
	shardTag int
}

// Options configures an NR instance.
type Options struct {
	// Replicas is the number of replicas (NUMA nodes). Minimum 1.
	Replicas int
	// LogSize is the number of slots in the shared log ring.
	LogSize int
	// ShardTag, when non-zero, is 1+slot of this instance in the
	// per-shard kstat space (obs.ShardSlot*): combiner passes are then
	// additionally recorded under that slot, giving the combiner stats a
	// shard dimension. Zero means untagged (a standalone instance).
	ShardTag int
}

// New creates an NR instance with one data-structure copy per replica.
// create is called once per replica and must produce identical initial
// states.
func New[Rd any, Wr any, Resp any](opts Options, create func() DataStructure[Rd, Wr, Resp]) *NR[Rd, Wr, Resp] {
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	n := &NR[Rd, Wr, Resp]{log: newLog[Wr](opts.LogSize), shardTag: opts.ShardTag}
	for i := 0; i < opts.Replicas; i++ {
		r := &Replica[Rd, Wr, Resp]{nr: n, id: uint32(i), ds: create()}
		n.replicas = append(n.replicas, r)
		n.log.appliedTails = append(n.log.appliedTails, &r.applied)
		n.log.helpers = append(n.log.helpers, r.helpSync)
	}
	return n
}

// helpSync opportunistically applies log entries up to target on behalf
// of another thread (log garbage collection assistance).
func (r *Replica[Rd, Wr, Resp]) helpSync(target uint64) {
	if r.applied.Load() >= target {
		return
	}
	if r.combiner.TryLock() {
		r.applyUpTo(target)
		r.combiner.Unlock()
	}
}

// NumReplicas returns the replica count.
func (n *NR[Rd, Wr, Resp]) NumReplicas() int { return len(n.replicas) }

// Replica returns replica i.
func (n *NR[Rd, Wr, Resp]) Replica(i int) *Replica[Rd, Wr, Resp] { return n.replicas[i] }

// Register attaches a new thread to replica i and returns its context.
func (n *NR[Rd, Wr, Resp]) Register(i int) (*ThreadContext[Rd, Wr, Resp], error) {
	r := n.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	active := len(r.ctxs) - len(r.free)
	if active >= MaxThreadsPerReplica {
		return nil, fmt.Errorf("nr: replica %d has %d threads registered (max %d)",
			i, active, MaxThreadsPerReplica)
	}
	// A combiner batch (at most one op per active thread; multi-op
	// slots are separately capped by MaxBatchOps) must be smaller than
	// half the log ring, or the log could fill with a single batch and
	// reclamation could not keep ahead of publication.
	if (active+1)*2 > len(n.log.slots) {
		return nil, fmt.Errorf("nr: log ring (%d slots) too small for %d threads on replica %d",
			len(n.log.slots), active+1, i)
	}
	if l := len(r.free); l > 0 {
		id := r.free[l-1]
		r.free = r.free[:l-1]
		c := &ThreadContext[Rd, Wr, Resp]{r: r, id: id}
		// Copy-on-write: combiners snapshot r.ctxs under mu and then
		// walk the array unlocked, so a published backing array must
		// never be mutated — install the reused slot in a fresh copy.
		// (Append-path registrations keep the invariant naturally: they
		// never write inside the snapshotted length.) A stale snapshot
		// still holds the deregistered predecessor, which stays
		// slotEmpty forever.
		ctxs := make([]*ThreadContext[Rd, Wr, Resp], len(r.ctxs))
		copy(ctxs, r.ctxs)
		ctxs[id] = c
		r.ctxs = ctxs
		return c, nil
	}
	c := &ThreadContext[Rd, Wr, Resp]{r: r, id: uint32(len(r.ctxs))}
	r.ctxs = append(r.ctxs, c)
	return c, nil
}

// Deregister releases the thread's slot for reuse by a later Register.
// The context must be quiescent — no Execute or ExecuteRead in flight —
// and must not be used afterwards. Once Execute has returned, the
// owning replica has applied every entry tagged with this slot, so a
// successor thread reusing the id can never receive a stale response.
func (c *ThreadContext[Rd, Wr, Resp]) Deregister() {
	r := c.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.deregistered {
		panic(fmt.Sprintf("nr: double Deregister of thread %d on replica %d", c.id, r.id))
	}
	c.deregistered = true
	// The slot stays in ctxs (the combiner may hold a snapshot that
	// includes it; its state is slotEmpty forever) until reused.
	r.free = append(r.free, c.id)
}

// NumThreads returns the number of active (registered, not
// deregistered) threads on replica i.
func (n *NR[Rd, Wr, Resp]) NumThreads(i int) int {
	r := n.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ctxs) - len(r.free)
}

// MustRegister is Register, panicking on error (for tests and setup
// paths where exceeding the thread bound is a programming error).
func (n *NR[Rd, Wr, Resp]) MustRegister(i int) *ThreadContext[Rd, Wr, Resp] {
	c, err := n.Register(i)
	if err != nil {
		panic(err)
	}
	return c
}

// Execute performs a mutating operation and returns its response once
// the operation has been applied at this thread's replica. The
// linearization point is the operation's position in the shared log.
func (c *ThreadContext[Rd, Wr, Resp]) Execute(op Wr) Resp {
	c.op = op
	c.st.Store(slotPending)
	c.awaitDone()
	c.st.Store(slotEmpty)
	return c.resp
}

// awaitDone drives the combiner until this slot's pending submission
// has been applied and its response(s) deposited.
func (c *ThreadContext[Rd, Wr, Resp]) awaitDone() {
	r := c.r
	for {
		if r.combiner.TryLock() {
			r.combine()
			r.combiner.Unlock()
			if c.st.Load() == slotDone {
				return
			}
			// Our slot can only be batched by our own combiner pass
			// while we hold the pending flag, so reaching here means a
			// concurrent combiner picked us up... which cannot happen:
			// combine() always drains every pending slot. Loop for
			// defense in depth — but yield first: on GOMAXPROCS=1 a
			// tight TryLock/combine loop would otherwise never let the
			// goroutine that could finish our slot run.
			obs.NRExecuteRetries.Add(c.r.id, 1)
			runtime.Gosched()
			continue
		}
		// Another thread is combining on our behalf; wait for it.
		if c.st.Load() == slotDone {
			return
		}
		runtime.Gosched()
	}
}

// MaxBatchOps is the largest submission one slot may publish in a
// single combiner pass. The Register invariant guarantees a combiner
// batch of one-op slots stays under half the log ring; multi-op slots
// scale that bound by their length, so the cap keeps the worst case
// (every possible thread pending a full batch) at exactly the same
// half-ring ceiling: MaxThreadsPerReplica * cap <= len(slots)/2.
func (n *NR[Rd, Wr, Resp]) MaxBatchOps() int {
	m := len(n.log.slots) / (2 * MaxThreadsPerReplica)
	if m < 1 {
		m = 1
	}
	return m
}

// ExecuteBatch performs a vector of mutating operations as contiguous
// entries in the shared log — one combiner pass and one log reservation
// for the whole batch (amortizing the per-op reserve/publish and
// combine-pass cost) — and returns their responses in submission order.
// The ops linearize as an uninterrupted run: no foreign operation is
// applied between two ops of the same batch at any replica.
//
// Batches longer than MaxBatchOps are split into runs of that size
// (each run still contiguous) so a single slot can never reserve more
// than its share of the ring.
func (c *ThreadContext[Rd, Wr, Resp]) ExecuteBatch(ops []Wr) []Resp {
	if len(ops) == 0 {
		return nil
	}
	max := c.r.nr.MaxBatchOps()
	out := make([]Resp, 0, len(ops))
	for start := 0; start < len(ops); start += max {
		end := start + max
		if end > len(ops) {
			end = len(ops)
		}
		out = append(out, c.executeRun(ops[start:end])...)
	}
	return out
}

func (c *ThreadContext[Rd, Wr, Resp]) executeRun(ops []Wr) []Resp {
	c.ops = ops
	c.resps = make([]Resp, len(ops))
	c.filled = 0
	c.st.Store(slotPending)
	c.awaitDone()
	c.st.Store(slotEmpty)
	resps := c.resps
	c.ops, c.resps = nil, nil
	return resps
}

// ExecuteRead performs a read-only operation against the local replica
// after syncing it to the log tail observed at invocation — the NR
// linearizability condition for reads.
func (c *ThreadContext[Rd, Wr, Resp]) ExecuteRead(op Rd) Resp {
	r := c.r
	horizon := r.nr.log.Tail()
	if r.applied.Load() >= horizon {
		obs.NRReadFast.Add(r.id, 1)
	} else {
		obs.NRReadSync.Add(r.id, 1)
	}
	for r.applied.Load() < horizon {
		// Replica is behind: help by combining (which applies
		// outstanding log entries) or wait for the active combiner.
		if r.combiner.TryLock() {
			r.combine()
			r.combiner.Unlock()
		} else {
			runtime.Gosched()
		}
	}
	r.lock.RLock()
	resp := r.ds.DispatchRead(op)
	r.lock.RUnlock()
	return resp
}

// combine is the flat-combining pass. Caller holds r.combiner.
//
// It (1) collects the pending operations of all threads registered on
// this replica, (2) reserves and publishes them as a contiguous batch in
// the shared log, and (3) applies every unapplied log entry — foreign
// and local — to the local data structure in log order, depositing
// responses into local slots.
func (r *Replica[Rd, Wr, Resp]) combine() {
	t0 := obs.Start()
	r.mu.Lock()
	ctxs := r.ctxs
	r.mu.Unlock()

	var batch []*ThreadContext[Rd, Wr, Resp]
	for _, c := range ctxs {
		if c.st.Load() == slotPending {
			batch = append(batch, c)
		}
	}

	lg := r.nr.log
	var last uint64
	if len(batch) > 0 {
		var total uint64
		for _, c := range batch {
			total += c.numOps()
		}
		first := lg.reserve(total)
		// selfHelp: we hold our own combiner lock, so when the ring is
		// full and we are the laggard, apply entries ourselves. The
		// target is capped below `first`, so we never try to apply our
		// own still-unpublished batch.
		selfHelp := func(target uint64) {
			if target > first {
				target = first
			}
			r.applyUpTo(target)
		}
		idx := first
		for _, c := range batch {
			if c.ops != nil {
				// Multi-op submission: contiguous run tagged with the
				// same slot; applyUpTo deposits responses positionally.
				for j := range c.ops {
					lg.publish(idx, c.ops[j], r.id, c.id, selfHelp)
					idx++
				}
			} else {
				lg.publish(idx, c.op, r.id, c.id, selfHelp)
				idx++
			}
		}
		last = first + total
		r.batches.Add(1)
		r.combined.Add(total)
	} else {
		last = lg.Tail()
	}

	// Apply everything up to (at least) our batch's end.
	r.applyUpTo(last)

	if len(batch) > 0 {
		obs.NRBatchSize.Record(r.id, uint64(len(batch)))
	}
	obs.NRCombineLatency.Since(r.id, t0)
	if tag := r.nr.shardTag; tag > 0 {
		// The shard dimension of the combiner stats: one count + latency
		// per combine pass, indexed by the instance's shard slot.
		obs.NRShardCombine.Observe(uint64(tag-1), r.id, t0)
	}
}

// applyUpTo applies log entries [applied, target) to the local replica.
// Caller holds r.combiner.
func (r *Replica[Rd, Wr, Resp]) applyUpTo(target uint64) {
	cur := r.applied.Load()
	if cur >= target {
		return
	}
	lg := r.nr.log
	r.mu.Lock()
	ctxs := r.ctxs
	r.mu.Unlock()
	r.lock.Lock()
	for ; cur < target; cur++ {
		op, rep, ctx := lg.read(cur)
		resp := r.ds.DispatchWrite(op)
		if rep == r.id {
			c := ctxs[ctx]
			if c.ops != nil {
				// Entries of a multi-op submission arrive in log order,
				// which is submission order; slotDone only once the
				// whole run has been deposited, so the owner never
				// observes a partially filled response vector.
				c.resps[c.filled] = resp
				c.filled++
				if int(c.filled) == len(c.ops) {
					c.st.Store(slotDone)
				}
			} else {
				c.resp = resp
				c.st.Store(slotDone)
			}
		}
	}
	r.applied.Store(cur)
	r.lock.Unlock()
}

// Sync forces the replica to catch up with the current log tail. Used
// by checkers that compare replica states.
func (r *Replica[Rd, Wr, Resp]) Sync() {
	target := r.nr.log.Tail()
	for r.applied.Load() < target {
		if r.combiner.TryLock() {
			r.applyUpTo(target)
			r.combiner.Unlock()
		} else {
			runtime.Gosched()
		}
	}
}

// Inspect runs f with the replica's data structure under the read lock,
// after syncing to the current tail. Only checkers and tests use it.
func (r *Replica[Rd, Wr, Resp]) Inspect(f func(ds DataStructure[Rd, Wr, Resp])) {
	r.Sync()
	r.lock.RLock()
	defer r.lock.RUnlock()
	f(r.ds)
}

// CombinerStats reports flat-combining effectiveness: total batched
// operations and number of batches.
func (r *Replica[Rd, Wr, Resp]) CombinerStats() (ops, batches uint64) {
	return r.combined.Load(), r.batches.Load()
}

// Tail exposes the log tail (for tests).
func (n *NR[Rd, Wr, Resp]) Tail() uint64 { return n.log.Tail() }

// Applied exposes a replica's applied tail. Together with Tail it gives
// the replica's apply lag — the per-shard gauge the observability layer
// surfaces.
func (r *Replica[Rd, Wr, Resp]) Applied() uint64 { return r.applied.Load() }
