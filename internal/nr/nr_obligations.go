package nr

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/lin"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the node-replication verification
// conditions — the IronSync theorem of §4.3 in executable form:
// concurrent histories over an NR-replicated sequential structure are
// linearizable; replicas converge to identical states; responses match
// a sequential twin; and the log survives wraparound under concurrency.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "nr", Name: "histories-linearizable", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error { return checkLinearizable(r) }},
		verifier.Obligation{Module: "nr", Name: "replicas-converge", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				n := New(Options{Replicas: 3}, newOblKV)
				var wg sync.WaitGroup
				seeds := make([]int64, 6)
				for i := range seeds {
					seeds[i] = r.Int63()
				}
				for gI := 0; gI < 6; gI++ {
					wg.Add(1)
					go func(gI int) {
						defer wg.Done()
						rr := rand.New(rand.NewSource(seeds[gI]))
						c := n.MustRegister(gI % 3)
						for i := 0; i < 400; i++ {
							c.Execute(oblW{k: uint64(rr.Intn(64)), v: rr.Uint64()})
						}
					}(gI)
				}
				wg.Wait()
				var states []map[uint64]uint64
				for i := 0; i < 3; i++ {
					n.Replica(i).Inspect(func(d DataStructure[oblR, oblW, oblResp]) {
						src := d.(*oblKV).m
						cp := make(map[uint64]uint64, len(src))
						for k, v := range src {
							cp[k] = v
						}
						states = append(states, cp)
					})
				}
				for i := 1; i < 3; i++ {
					if len(states[i]) != len(states[0]) {
						return fmt.Errorf("replica %d size %d != %d", i, len(states[i]), len(states[0]))
					}
					for k, v := range states[0] {
						if states[i][k] != v {
							return fmt.Errorf("replica %d diverged at key %d", i, k)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "matches-sequential-twin", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Single thread: every response must equal a plain
				// sequential map's response for the same op stream.
				n := New(Options{Replicas: 2}, newOblKV)
				c := n.MustRegister(0)
				ref := make(map[uint64]uint64)
				for i := 0; i < 2000; i++ {
					k := uint64(r.Intn(32))
					if r.Intn(3) == 0 {
						got := c.ExecuteRead(oblR{k: k})
						want, okW := ref[k]
						if got.ok != okW || got.v != want {
							return fmt.Errorf("read(%d) = %+v, ref (%d,%t)", k, got, want, okW)
						}
					} else {
						v := r.Uint64()
						got := c.Execute(oblW{k: k, v: v})
						want, okW := ref[k]
						if got.ok != okW || (okW && got.v != want) {
							return fmt.Errorf("write(%d) old = %+v, ref (%d,%t)", k, got, want, okW)
						}
						ref[k] = v
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "log-wraparound-stress", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// A tiny ring forces many reclamation cycles while one
				// replica has no active threads (helper path).
				n := New(Options{Replicas: 2, LogSize: 64}, newOblKV)
				var wg sync.WaitGroup
				for gI := 0; gI < 3; gI++ {
					wg.Add(1)
					go func(gI int) {
						defer wg.Done()
						c := n.MustRegister(0)
						for i := 0; i < 3000; i++ {
							c.Execute(oblW{k: uint64(gI), v: uint64(i)})
						}
					}(gI)
				}
				wg.Wait()
				idle := n.MustRegister(1)
				for gI := 0; gI < 3; gI++ {
					got := idle.ExecuteRead(oblR{k: uint64(gI)})
					if !got.ok || got.v != 2999 {
						return fmt.Errorf("after wraparound key %d = %+v", gI, got)
					}
				}
				if n.Tail() != 9000 {
					return fmt.Errorf("tail = %d, want 9000", n.Tail())
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "reads-see-preceding-writes", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error {
				// Real-time order across replicas: a read invoked after
				// a write returned must observe it.
				n := New(Options{Replicas: 2}, newOblKV)
				w := n.MustRegister(0)
				rd := n.MustRegister(1)
				for i := 0; i < 500; i++ {
					k, v := uint64(r.Intn(16)), r.Uint64()
					w.Execute(oblW{k: k, v: v})
					got := rd.ExecuteRead(oblR{k: k})
					if !got.ok || got.v != v {
						return fmt.Errorf("stale read at iter %d: %+v, want %d", i, got, v)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "nr", Name: "sharded-matches-reference", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s := NewSharded(4, Options{Replicas: 2}, newOblKV)
				th, err := s.Register(0)
				if err != nil {
					return err
				}
				ref := make(map[uint64]uint64)
				for i := 0; i < 1500; i++ {
					k := uint64(r.Intn(256))
					if r.Intn(3) == 0 {
						got := th.ExecuteRead(k, oblR{k: k})
						want, okW := ref[k]
						if got.ok != okW || got.v != want {
							return fmt.Errorf("sharded read(%d) diverged", k)
						}
					} else {
						v := r.Uint64()
						th.Execute(k, oblW{k: k, v: v})
						ref[k] = v
					}
				}
				return nil
			}},
	)
}

// oblKV is the sequential structure used by the NR obligations.
type oblKV struct{ m map[uint64]uint64 }

type oblR struct{ k uint64 }

type oblW struct{ k, v uint64 }

type oblResp struct {
	v  uint64
	ok bool
}

func newOblKV() DataStructure[oblR, oblW, oblResp] {
	return &oblKV{m: make(map[uint64]uint64)}
}

// DispatchRead implements DataStructure.
func (s *oblKV) DispatchRead(op oblR) oblResp {
	v, ok := s.m[op.k]
	return oblResp{v: v, ok: ok}
}

// DispatchWrite implements DataStructure.
func (s *oblKV) DispatchWrite(op oblW) oblResp {
	old, ok := s.m[op.k]
	s.m[op.k] = op.v
	return oblResp{v: old, ok: ok}
}

// checkLinearizable records a small concurrent history and checks it
// with the Wing–Gong checker.
func checkLinearizable(r *rand.Rand) error {
	n := New(Options{Replicas: 2}, newOblKV)
	type opIn struct {
		read bool
		w    oblW
		k    uint64
	}
	rec := lin.NewRecorder[opIn, oblResp]()
	seeds := make([]int64, 4)
	for i := range seeds {
		seeds[i] = r.Int63()
	}
	var wg sync.WaitGroup
	for t := 0; t < 4; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seeds[t]))
			c := n.MustRegister(t % 2)
			for i := 0; i < 8; i++ {
				if rr.Intn(2) == 0 {
					in := opIn{w: oblW{k: uint64(rr.Intn(3)), v: uint64(t)<<32 | uint64(i)}}
					p := rec.Invoke(t, in)
					p.Return(c.Execute(in.w))
				} else {
					in := opIn{read: true, k: uint64(rr.Intn(3))}
					p := rec.Invoke(t, in)
					p.Return(c.ExecuteRead(oblR{k: in.k}))
				}
			}
		}(t)
	}
	wg.Wait()
	model := lin.Model[string, opIn, oblResp]{
		Init: func() string { return encodeKV(map[uint64]uint64{}) },
		Apply: func(s string, in opIn) (string, oblResp) {
			m := decodeKV(s)
			if in.read {
				v, ok := m[in.k]
				return s, oblResp{v: v, ok: ok}
			}
			old, ok := m[in.w.k]
			m[in.w.k] = in.w.v
			return encodeKV(m), oblResp{v: old, ok: ok}
		},
		Key:       func(s string) string { return s },
		EqualResp: func(a, b oblResp) bool { return a == b },
	}
	return lin.Check(model, rec.History())
}

// encodeKV/decodeKV give the model a comparable state representation.
func encodeKV(m map[uint64]uint64) string {
	// Keys are tiny (0..2); a fixed-width dump is canonical.
	out := ""
	for k := uint64(0); k < 4; k++ {
		if v, ok := m[k]; ok {
			out += fmt.Sprintf("%d=%d;", k, v)
		}
	}
	return out
}

func decodeKV(s string) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	var k, v uint64
	for len(s) > 0 {
		n, _ := fmt.Sscanf(s, "%d=%d;", &k, &v)
		if n != 2 {
			break
		}
		m[k] = v
		idx := 0
		for idx < len(s) && s[idx] != ';' {
			idx++
		}
		s = s[idx+1:]
	}
	return m
}
