// Package nr implements node replication ("NR", §4.1 of the paper):
// the log-based shared-memory synchronization mechanism NrOS uses to
// turn sequential kernel data structures into linearizable concurrent
// ones with good multi-core scalability.
//
// A sequential data structure is replicated once per NUMA node. All
// mutating operations are appended to a shared operation log and applied
// to every replica in log order; reads execute against the local replica
// after it has caught up with the log's tail at invocation time. Writes
// achieve concurrency through flat combining — one thread per replica
// (the combiner) batches the pending operations of its peers — and reads
// through a per-replica readers-writer lock.
//
// The package is the Go port of the algorithm IronSync verified (§4.3):
// the linearizability obligation for NR instances is discharged by the
// checker in internal/lin, registered as VCs in obligations.go.
package nr

import (
	"runtime"
	"sync/atomic"
	"time"

	"github.com/verified-os/vnros/internal/obs"
)

// DefaultLogSize is the default number of slots in the shared log ring.
const DefaultLogSize = 1 << 16

// entry is one slot of the shared log ring.
type entry[Wr any] struct {
	op      Wr
	replica uint32
	ctx     uint32
	// seq is idx+1 once the slot at logical index idx is fully written.
	// Because logical indices increase monotonically across ring reuse,
	// a reader waiting for index idx spins until seq == idx+1.
	seq atomic.Uint64
}

// log is the shared operation log: a ring of entries plus a reservation
// tail. Garbage collection is implicit — a producer may not reuse a slot
// until every replica has applied the entry previously in it, tracked
// via the replicas' applied-tail counters.
type log[Wr any] struct {
	slots []entry[Wr]
	mask  uint64
	tail  atomic.Uint64 // next logical index to reserve
	// head caches min(replica applied tails); producers refresh it when
	// the ring looks full.
	head atomic.Uint64
	// appliedTails are the per-replica applied-tail counters used for
	// implicit log garbage collection.
	appliedTails []*atomic.Uint64
	// helpers force lagging replicas forward; without them a replica
	// with no active threads would never apply entries and the ring
	// could never be reused (producers would deadlock on a full log).
	helpers []func(target uint64)
}

func newLog[Wr any](size int) *log[Wr] {
	if size <= 0 {
		size = DefaultLogSize
	}
	// Round up to a power of two.
	n := 1
	for n < size {
		n <<= 1
	}
	return &log[Wr]{slots: make([]entry[Wr], n), mask: uint64(n - 1)}
}

// Tail returns the current reservation tail: the linearization horizon a
// read must catch up to.
func (l *log[Wr]) Tail() uint64 { return l.tail.Load() }

// minApplied recomputes the slowest replica's applied tail.
func (l *log[Wr]) minApplied() uint64 {
	min := ^uint64(0)
	for _, t := range l.appliedTails {
		if v := t.Load(); v < min {
			min = v
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// reserve claims n consecutive logical indices and returns the first.
func (l *log[Wr]) reserve(n uint64) uint64 {
	return l.tail.Add(n) - n
}

// waitForSpace blocks until the slot for logical index idx is reusable,
// i.e. every replica has applied index idx-ringSize (the entry
// previously occupying the slot). selfHelp lets the calling combiner
// advance its own replica — it holds its own combiner lock, so the
// generic helpers cannot do it, and without self-help a combiner whose
// own replica is the laggard would deadlock against itself.
func (l *log[Wr]) waitForSpace(idx uint64, replica uint32, selfHelp func(target uint64)) {
	ring := uint64(len(l.slots))
	if idx < ring {
		return
	}
	need := idx - ring + 1 // all replicas must have applied beyond this
	var t0 stallTimer
	for {
		if h := l.head.Load(); h >= need {
			t0.done(replica)
			return
		}
		t0.start(idx, replica)
		m := l.minApplied()
		// head only moves forward.
		for {
			h := l.head.Load()
			if m <= h || l.head.CompareAndSwap(h, m) {
				break
			}
		}
		if m >= need {
			t0.done(replica)
			return
		}
		// Entries below `need` are at least a full ring older than idx,
		// so they are all published: applying up to `need` cannot spin
		// on an unwritten slot.
		if selfHelp != nil {
			selfHelp(need)
		}
		// Help lagging replicas (possibly ones with no active threads)
		// apply up to the reclamation horizon.
		for _, help := range l.helpers {
			help(need)
		}
		runtime.Gosched()
	}
}

// stallTimer accumulates one waitForSpace stall: counted once on first
// blocked iteration, latency recorded when space frees up. Zero-cost
// (no time.Now) when the ring has room or stats are disabled.
type stallTimer struct {
	t0      time.Time
	started bool
}

func (s *stallTimer) start(idx uint64, replica uint32) {
	if s.started {
		return
	}
	s.started = true
	obs.NRLogFullStalls.Add(replica, 1)
	obs.KernelTrace.Emit(obs.KindLogStall, idx, uint64(replica))
	s.t0 = obs.Start()
}

func (s *stallTimer) done(replica uint32) {
	if s.started {
		obs.NRLogStallTime.Since(replica, s.t0)
	}
}

// publish writes the operation into slot idx and marks it readable.
func (l *log[Wr]) publish(idx uint64, op Wr, replica, ctx uint32, selfHelp func(target uint64)) {
	l.waitForSpace(idx, replica, selfHelp)
	s := &l.slots[idx&l.mask]
	s.op = op
	s.replica = replica
	s.ctx = ctx
	s.seq.Store(idx + 1)
}

// read returns the entry at logical index idx, spinning until it has
// been published.
func (l *log[Wr]) read(idx uint64) (Wr, uint32, uint32) {
	s := &l.slots[idx&l.mask]
	for s.seq.Load() != idx+1 {
		runtime.Gosched()
	}
	return s.op, s.replica, s.ctx
}
