package pt

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
)

// This file states the well-formedness invariant of the Verified
// implementation — the §5 proof's induction hypothesis relating the
// multi-level tree encoded as bits to the ghost bookkeeping:
//
//  1. every present non-leaf entry points at a frame in the `tables`
//     ghost set, recorded at the correct level;
//  2. every table frame in the ghost set is referenced by exactly one
//     parent entry (the tree is a tree);
//  3. the recorded live-entry counts match the bits in memory;
//  4. every present entry is architecturally valid (no reserved-bit
//     patterns the MMU would fault on);
//  5. no table frame is also mapped as a leaf frame (the structure
//     never aliases its own metadata — a page-table self-map would be a
//     deliberate, separately specified feature);
//  6. the ghost `mapped` counter equals the number of leaves.
type invariantChecker struct {
	v      *Verified
	seen   map[mem.PAddr]int // table frame -> references
	leaves int
	frames map[mem.PAddr]bool // leaf target frames
}

// CheckInvariant validates the full well-formedness invariant by
// walking the tree. It is O(tree size) and intended for the VC engine,
// tests, and the ghost-check mode — not the hot path.
func (v *Verified) CheckInvariant() error {
	c := &invariantChecker{
		v:      v,
		seen:   make(map[mem.PAddr]int),
		frames: make(map[mem.PAddr]bool),
	}
	if err := c.walkTable(v.root, mmu.Levels); err != nil {
		return err
	}
	// (2) every ghost table referenced exactly once.
	for t, info := range v.tables {
		refs := c.seen[t]
		if refs == 0 {
			return fmt.Errorf("pt: ghost table %v (level %d) unreachable from root", t, info.level)
		}
		if refs > 1 {
			return fmt.Errorf("pt: table %v referenced %d times (tree is not a tree)", t, refs)
		}
	}
	// (1, reverse direction) no reachable table missing from ghost set:
	// walkTable already checks membership.
	// (6) mapped count.
	if c.leaves != v.mapped {
		return fmt.Errorf("pt: ghost mapped=%d but tree has %d leaves", v.mapped, c.leaves)
	}
	return nil
}

func (c *invariantChecker) walkTable(table mem.PAddr, level int) error {
	v := c.v
	live := 0
	for i := uint64(0); i < mmu.EntriesPerTable; i++ {
		raw, err := v.m.Read64(table + mem.PAddr(i*8))
		if err != nil {
			return fmt.Errorf("pt: invariant walk failed at %v[%d]: %w", table, i, err)
		}
		e := mmu.Entry{Raw: raw, Level: level}
		if !e.Present() {
			continue
		}
		live++
		// (4) architectural validity.
		if !e.Valid() {
			return fmt.Errorf("pt: malformed entry %v at %v[%d]", e, table, i)
		}
		if e.IsLeaf() {
			c.leaves++
			// (5) leaf target must not be a table frame.
			if _, isTable := v.tables[e.Addr()]; isTable || e.Addr() == v.root {
				return fmt.Errorf("pt: leaf at %v[%d] maps table frame %v", table, i, e.Addr())
			}
			c.frames[e.Addr()] = true
			continue
		}
		sub := e.Addr()
		info, ok := v.tables[sub]
		if !ok {
			return fmt.Errorf("pt: reachable table %v (from %v[%d]) missing from ghost set", sub, table, i)
		}
		if info.level != level-1 {
			return fmt.Errorf("pt: table %v recorded at level %d, referenced from level %d", sub, info.level, level)
		}
		c.seen[sub]++
		if c.seen[sub] > 1 {
			return fmt.Errorf("pt: table %v shared by multiple parents", sub)
		}
		if err := c.walkTable(sub, level-1); err != nil {
			return err
		}
	}
	// (3) live counts (root is not in the ghost set).
	if info, ok := v.tables[table]; ok && info.live != live {
		return fmt.Errorf("pt: table %v ghost live=%d, actual=%d", table, info.live, live)
	}
	return nil
}
