package pt

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of page-table VCs: the
// protect path, huge-page semantics, out-of-memory atomicity, interior
// probes, frame-source discipline, and cross-replica TLB shootdown.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "pt", Name: "protect-changes-only-flags", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				va := mmu.VAddr(0x4000_0000)
				frame := mem.PAddr(0x80_0000)
				if err := v.Map(va, frame, mmu.L1PageSize, mmu.Flags{Writable: true, User: true}); err != nil {
					return err
				}
				pre, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				newFlags := mmu.Flags{User: true, NoExec: true}
				if err := v.Protect(va, newFlags); err != nil {
					return err
				}
				post, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				if len(post) != len(pre) {
					return fmt.Errorf("protect changed mapping count")
				}
				m := post[va]
				if m.Frame != frame || m.PageSize != mmu.L1PageSize {
					return fmt.Errorf("protect moved the mapping: %+v", m)
				}
				if m.Flags != newFlags {
					return fmt.Errorf("flags = %+v, want %+v", m.Flags, newFlags)
				}
				// Protect of unmapped and interior addresses fails clean.
				if err := v.Protect(va+mmu.L1PageSize, newFlags); !errors.Is(err, ErrNotMapped) {
					return fmt.Errorf("protect unmapped: %v", err)
				}
				return v.CheckInvariant()
			}},
		verifier.Obligation{Module: "pt", Name: "huge-page-refinement", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				pm := mem.New(256 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				h, err := NewHarness(v, pm)
				if err != nil {
					return err
				}
				base := mmu.VAddr(0x8000_0000)
				ops := []TraceOp{
					{Kind: "map", VA: base, Frame: 0x40_0000, Size: mmu.L2PageSize, Flags: mmu.Flags{Writable: true}},
					{Kind: "resolve", VA: base + 0x12345},
					{Kind: "map", VA: base + mmu.L1PageSize, Frame: 0x80_0000, Size: mmu.L1PageSize}, // conflicts
					{Kind: "map", VA: base + mmu.L2PageSize, Frame: 0x80_0000, Size: mmu.L1PageSize}, // adjacent ok
					{Kind: "unmap", VA: base},
					{Kind: "map", VA: base, Frame: 0x80_0000, Size: mmu.L1PageSize}, // now fits
				}
				for i, op := range ops {
					if err := h.Apply(op); err != nil {
						return fmt.Errorf("huge op %d: %w", i, err)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "oom-leaves-state-unchanged", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// A frame source with almost no capacity: map must fail
				// with ErrOutOfMemory and leave the abstraction unchanged
				// (no half-installed directories visible to the MMU).
				pm := mem.New(16 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 0x1000+2*mem.PageSize) // root + 1 table
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				pre, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				err = v.Map(0x4000_0000, 0x80_0000, mmu.L1PageSize, mmu.Flags{})
				if !errors.Is(err, ErrOutOfMemory) {
					return fmt.Errorf("map with exhausted frames: %v", err)
				}
				post, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				if !pre.Equal(post) {
					return fmt.Errorf("failed map changed the abstraction")
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "unmap-interior-rejected", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				if err := v.Map(0x4000_0000, 0x40_0000, mmu.L2PageSize, mmu.Flags{}); err != nil {
					return err
				}
				for i := 0; i < 50; i++ {
					off := mmu.VAddr(1+r.Intn(mmu.L2PageSize-1)) &^ 0 // any interior byte
					if _, err := v.Unmap(0x4000_0000 + off); err == nil {
						return fmt.Errorf("interior unmap at +%#x succeeded", uint64(off))
					}
					// State unchanged.
					if m, ok := v.Resolve(0x4000_0000); !ok || m.PageSize != mmu.L2PageSize {
						return fmt.Errorf("huge mapping damaged by rejected unmap")
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "frame-source-discipline", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Table frames are never double-allocated or leaked over
				// a long random workload: outstanding == root + live
				// directory count derivable from the tree.
				pm := mem.New(128 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				live := map[mmu.VAddr]bool{}
				for i := 0; i < 600; i++ {
					va := mmu.VAddr(uint64(r.Intn(128)) * mmu.L1PageSize * 512) // spread across directories
					if r.Intn(2) == 0 {
						if err := v.Map(va, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); err == nil {
							live[va] = true
						}
					} else if live[va] {
						if _, err := v.Unmap(va); err != nil {
							return err
						}
						delete(live, va)
					}
				}
				if err := v.CheckInvariant(); err != nil {
					return err
				}
				// Unmap everything; outstanding must return to 1 (root).
				for va := range live {
					if _, err := v.Unmap(va); err != nil {
						return err
					}
				}
				if got := src.Outstanding(); got != 1 {
					return fmt.Errorf("outstanding = %d after full teardown, want 1", got)
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "replicated-unmap-shoots-down-all-mmus", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Per-replica page tables with per-core MMUs: after an
				// unmap through NR, no core's MMU may still translate —
				// the multi-core version of the §5 shootdown obligation.
				ras, hws, err := newHWReplicated(2)
				if err != nil {
					return err
				}
				c0, err := ras.Register(0)
				if err != nil {
					return err
				}
				va := mmu.VAddr(0x4000_0000)
				if resp := c0.Execute(ASWrite{Kind: "map", VA: va, Frame: 0x100_0000,
					Size: mmu.L1PageSize, Flags: mmu.Flags{Writable: true, User: true}}); resp.Outcome != OutcomeOK {
					return fmt.Errorf("map: %s", resp.Outcome)
				}
				// Warm both replicas' MMUs (sync replica 1 via a read).
				c1, err := ras.Register(1)
				if err != nil {
					return err
				}
				c1.ExecuteRead(ASRead{Kind: "resolve", VA: va})
				for i, hw := range hws {
					hw.mmu.SetRoot(hw.as.Root(), 1)
					if _, f := hw.mmu.Translate(va, mmu.AccessRead); f != nil {
						return fmt.Errorf("replica %d MMU cannot translate after map: %v", i, f)
					}
				}
				if resp := c0.Execute(ASWrite{Kind: "unmap", VA: va}); resp.Outcome != OutcomeOK {
					return fmt.Errorf("unmap: %s", resp.Outcome)
				}
				c1.ExecuteRead(ASRead{Kind: "resolve", VA: va}) // sync replica 1
				for i, hw := range hws {
					if _, f := hw.mmu.Translate(va, mmu.AccessRead); f == nil {
						return fmt.Errorf("replica %d MMU still translates after unmap (no shootdown)", i)
					}
				}
				return nil
			}},
	)
}

// hwReplica bundles one replica's private memory, MMU, and address
// space for the cross-replica shootdown obligation.
type hwReplica struct {
	pm  *mem.PhysMem
	mmu *mmu.MMU
	as  *Verified
}

// newHWReplicated builds an NR-replicated address space where each
// replica's unmap path invalidates that replica's MMU — the NrOS
// arrangement of per-node page tables and per-core TLBs.
func newHWReplicated(replicas int) (*ReplicatedAS, []*hwReplica, error) {
	var hws []*hwReplica
	var createErr error
	n := nr.New(nr.Options{Replicas: replicas},
		func() nr.DataStructure[ASRead, ASWrite, ASResp] {
			pm := mem.New(256 << 20)
			src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
			u := mmu.New(pm)
			as, err := NewVerified(pm, src, func(va mmu.VAddr) { u.Invlpg(va) })
			if err != nil && createErr == nil {
				createErr = err
			}
			hws = append(hws, &hwReplica{pm: pm, mmu: u, as: as})
			return &asDS{as: as}
		})
	if createErr != nil {
		return nil, nil, createErr
	}
	return &ReplicatedAS{NR: n}, hws, nil
}
