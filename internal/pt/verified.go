package pt

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/obs"
)

// Verified is the proof-structured page-table implementation. Each
// operation proceeds in explicit phases — locate the slot path, check
// the precondition against the current entries, perform the single
// architectural store that commits the operation — so that every
// intermediate state is related to an abstract state by the
// interpretation function (see pt_refine.go). Table-frame bookkeeping
// (the `tables` set) is ghost state: it exists to state the
// well-formedness invariant and to free empty directories, and is
// excluded from the interpretation.
type Verified struct {
	m      *mem.PhysMem
	frames FrameSource
	root   mem.PAddr
	inval  InvalidateFunc

	// tables tracks the page-table frames owned by this address space
	// (root excluded), with a live-entry count per directory frame so
	// unmap can free empties. This mirrors NrOS's per-space frame list.
	tables map[mem.PAddr]*tableInfo

	// mapped counts live leaf mappings, used by invariants.
	mapped int

	// ghostChecksEnabled turns on the per-operation internal invariant
	// re-validation. It is what the ghost-check ablation bench toggles:
	// the paper's point is that verification artifacts cost nothing at
	// runtime, and with checks off the hot path is identical to
	// Unverified's.
	ghostChecksEnabled bool

	// obsShard stripes this address space's kstat updates (pt.* kstats
	// are apply-side: one count per replica per logged map/unmap).
	obsShard uint32
}

// tableInfo is bookkeeping for one directory frame.
type tableInfo struct {
	level int // level of the entries stored in this frame
	live  int // number of present entries
}

// NewVerified creates an empty verified address space. The root frame
// is allocated from frames immediately.
func NewVerified(m *mem.PhysMem, frames FrameSource, inval InvalidateFunc) (*Verified, error) {
	root, err := frames.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("%w: root: %v", ErrOutOfMemory, err)
	}
	if inval == nil {
		inval = func(mmu.VAddr) {}
	}
	return &Verified{
		m:        m,
		frames:   frames,
		root:     root,
		inval:    inval,
		tables:   make(map[mem.PAddr]*tableInfo),
		obsShard: obs.NextShard(),
	}, nil
}

// EnableGhostChecks turns on internal invariant re-validation after
// every mutating operation (used by the refinement tests; expensive).
func (v *Verified) EnableGhostChecks(on bool) { v.ghostChecksEnabled = on }

// Root returns the PML4 frame.
func (v *Verified) Root() mem.PAddr { return v.root }

// Mem exposes the backing physical memory (for the refinement harness's
// interpretation function).
func (v *Verified) Mem() *mem.PhysMem { return v.m }

// MappedPages returns the number of live leaf mappings.
func (v *Verified) MappedPages() int { return v.mapped }

// readEntry loads the entry at the given slot.
func (v *Verified) readEntry(table mem.PAddr, va mmu.VAddr, level int) (mmu.Entry, error) {
	raw, err := v.m.Read64(mmu.EntryAddr(table, va, level))
	if err != nil {
		return mmu.Entry{}, err
	}
	return mmu.Entry{Raw: raw, Level: level}, nil
}

// writeEntry stores an entry and maintains the live count of the
// containing table.
func (v *Verified) writeEntry(table mem.PAddr, va mmu.VAddr, e mmu.Entry) error {
	old, err := v.readEntry(table, va, e.Level)
	if err != nil {
		return err
	}
	if err := v.m.Write64(mmu.EntryAddr(table, va, e.Level), e.Raw); err != nil {
		return err
	}
	if info := v.tables[table]; info != nil {
		switch {
		case !old.Present() && e.Present():
			info.live++
		case old.Present() && !e.Present():
			info.live--
		}
	}
	return nil
}

// descend returns the table frame for the next level below the entry at
// (table, level), allocating and installing an intermediate directory if
// absent. Phase 1 of Map.
func (v *Verified) descend(table mem.PAddr, va mmu.VAddr, level int) (mem.PAddr, error) {
	e, err := v.readEntry(table, va, level)
	if err != nil {
		return 0, err
	}
	if e.Present() {
		if e.IsLeaf() {
			return 0, fmt.Errorf("%w: huge page at level %d covers %v", ErrHugeConflict, level, va)
		}
		return e.Addr(), nil
	}
	sub, err := v.frames.AllocFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: level %d directory: %v", ErrOutOfMemory, level-1, err)
	}
	// A fresh directory must read as all-non-present: FrameSource
	// guarantees zeroed frames; the invariant re-checks this under
	// ghost checks.
	v.tables[sub] = &tableInfo{level: level - 1}
	if err := v.writeEntry(table, va, mmu.MakeTable(level, sub)); err != nil {
		return 0, err
	}
	return sub, nil
}

// Map implements AddressSpace.
//
// Proof structure: after argument validation, the walk either fails
// (ErrHugeConflict) leaving the state unchanged, or reaches the slot for
// va at the leaf level with all intermediate directories installed.
// Installing intermediate directories does not change the
// interpretation (they contain no present entries), so those steps are
// stutter steps of the high-level machine; the single leaf store is the
// transition that corresponds to the spec's map event.
func (v *Verified) Map(va mmu.VAddr, frame mem.PAddr, size uint64, flags mmu.Flags) error {
	if err := checkArgs(va, frame, size); err != nil {
		return err
	}
	t0 := obs.Start()
	target := leafLevel(size)

	// Phase 1: walk (and build) the directory path down to the target
	// level.
	table := v.root
	for level := mmu.Levels; level > target; level-- {
		sub, err := v.descend(table, va, level)
		if err != nil {
			return err
		}
		table = sub
	}

	// Phase 2: precondition — the slot must be empty.
	e, err := v.readEntry(table, va, target)
	if err != nil {
		return err
	}
	if e.Present() {
		return fmt.Errorf("%w: %v at level %d", ErrAlreadyMapped, va, target)
	}

	// Phase 3: the committing store.
	if err := v.writeEntry(table, va, mmu.MakeLeaf(target, frame, flags)); err != nil {
		return err
	}
	v.mapped++

	if v.ghostChecksEnabled {
		if err := v.CheckInvariant(); err != nil {
			return fmt.Errorf("pt: ghost check after map: %w", err)
		}
	}
	obs.PTMapLatency.Since(v.obsShard, t0)
	obs.KernelTrace.Emit(obs.KindPTMap, uint64(va), uint64(frame))
	return nil
}

// walkPath records the slot path from the root to the leaf entry
// covering va, for unmap's cleanup phase.
type pathStep struct {
	table mem.PAddr
	level int
}

// Unmap implements AddressSpace.
//
// Proof structure: locate the leaf (fail without mutation if absent),
// clear it (the committing store, matching the spec's unmap event),
// invalidate the TLB, then garbage-collect empty directories bottom-up
// (stutter steps: removing a directory with no present entries does not
// change the interpretation).
func (v *Verified) Unmap(va mmu.VAddr) (mem.PAddr, error) {
	if !va.IsCanonical() {
		return 0, fmt.Errorf("%w: %v", ErrNonCanonical, va)
	}
	t0 := obs.Start()

	// Phase 1: locate the leaf and record the path.
	var path []pathStep
	table := v.root
	var leaf mmu.Entry
	var leafTable mem.PAddr
	level := mmu.Levels
	for {
		path = append(path, pathStep{table: table, level: level})
		e, err := v.readEntry(table, va, level)
		if err != nil {
			return 0, err
		}
		if !e.Present() {
			return 0, fmt.Errorf("%w: %v", ErrNotMapped, va)
		}
		if e.IsLeaf() {
			// The spec's unmap takes the page base; reject interior
			// addresses so unmap(va) is unambiguous.
			if va.PageOffset(mmu.PageSizeAtLevel(level)) != 0 {
				return 0, fmt.Errorf("%w: %v is interior to a %d-byte page",
					ErrNotMapped, va, mmu.PageSizeAtLevel(level))
			}
			leaf = e
			leafTable = table
			break
		}
		table = e.Addr()
		level--
	}

	// Phase 2: the committing store — clear the leaf.
	if err := v.writeEntry(leafTable, va, mmu.Entry{Raw: 0, Level: leaf.Level}); err != nil {
		return 0, err
	}
	v.mapped--

	// Phase 3: TLB shootdown before the frame may be reused.
	v.inval(va)

	// Phase 4: free now-empty directories bottom-up (never the root).
	for i := len(path) - 1; i >= 1; i-- {
		step := path[i]
		info := v.tables[step.table]
		if info == nil || info.live > 0 {
			break
		}
		parent := path[i-1]
		if err := v.writeEntry(parent.table, va, mmu.Entry{Raw: 0, Level: parent.level}); err != nil {
			return 0, err
		}
		delete(v.tables, step.table)
		if err := v.frames.FreeFrame(step.table); err != nil {
			return 0, err
		}
	}

	if v.ghostChecksEnabled {
		if err := v.CheckInvariant(); err != nil {
			return 0, fmt.Errorf("pt: ghost check after unmap: %w", err)
		}
	}
	obs.PTUnmapLatency.Since(v.obsShard, t0)
	obs.KernelTrace.Emit(obs.KindPTUnmap, uint64(va), uint64(leaf.Addr()))
	return leaf.Addr(), nil
}

// Resolve implements AddressSpace. It is a pure read: it performs the
// same walk the MMU does (minus TLB and permission checks) and returns
// the mapping covering va.
func (v *Verified) Resolve(va mmu.VAddr) (Mapping, bool) {
	if !va.IsCanonical() {
		return Mapping{}, false
	}
	table := v.root
	for level := mmu.Levels; level >= 1; level-- {
		e, err := v.readEntry(table, va, level)
		if err != nil || !e.Present() {
			return Mapping{}, false
		}
		if e.IsLeaf() {
			return Mapping{
				Frame:    e.Addr(),
				PageSize: mmu.PageSizeAtLevel(level),
				Flags:    e.LeafFlags(),
			}, true
		}
		table = e.Addr()
	}
	return Mapping{}, false
}

// Protect changes the flags of an existing mapping (an NrOS API the
// paper's component list implies via memory management). The TLB is
// invalidated because permissions may have been reduced.
func (v *Verified) Protect(va mmu.VAddr, flags mmu.Flags) error {
	if !va.IsCanonical() {
		return fmt.Errorf("%w: %v", ErrNonCanonical, va)
	}
	table := v.root
	for level := mmu.Levels; level >= 1; level-- {
		e, err := v.readEntry(table, va, level)
		if err != nil {
			return err
		}
		if !e.Present() {
			return fmt.Errorf("%w: %v", ErrNotMapped, va)
		}
		if e.IsLeaf() {
			if va.PageOffset(mmu.PageSizeAtLevel(level)) != 0 {
				return fmt.Errorf("%w: %v is interior", ErrNotMapped, va)
			}
			if err := v.writeEntry(table, va, mmu.MakeLeaf(level, e.Addr(), flags)); err != nil {
				return err
			}
			v.inval(va)
			return nil
		}
		table = e.Addr()
	}
	return fmt.Errorf("%w: %v", ErrNotMapped, va)
}

// Destroy unmaps everything and releases all table frames including the
// root. The address space must not be used afterwards.
func (v *Verified) Destroy() error {
	for t := range v.tables {
		if err := v.frames.FreeFrame(t); err != nil {
			return err
		}
		delete(v.tables, t)
	}
	if err := v.frames.FreeFrame(v.root); err != nil {
		return err
	}
	v.mapped = 0
	return nil
}
