package pt

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/nr"
)

// This file packages an AddressSpace as an NR data structure, matching
// how NrOS replicates its address-space state per NUMA node (§4.1). Each
// replica owns a full page-table tree in its own region of (or its own)
// physical memory; NR keeps the replicas consistent by applying the
// same map/unmap log everywhere, and resolves run replica-locally.
//
// These are the exact objects the Figure 1b/1c benchmarks drive.

// ASRead is a read-only address-space operation.
type ASRead struct {
	Kind string // "resolve"
	VA   mmu.VAddr
}

// ASWrite is a mutating address-space operation.
type ASWrite struct {
	Kind  string // "map", "unmap", "protect"
	VA    mmu.VAddr
	Frame mem.PAddr
	Size  uint64
	Flags mmu.Flags
}

// ASResp is the response to either kind.
type ASResp struct {
	Outcome Outcome
	Frame   mem.PAddr
	Mapping Mapping
	OK      bool
}

// asDS adapts one AddressSpace replica to nr.DataStructure.
type asDS struct {
	as AddressSpace
}

// DispatchRead implements nr.DataStructure.
func (d *asDS) DispatchRead(op ASRead) ASResp {
	switch op.Kind {
	case "resolve":
		m, ok := d.as.Resolve(op.VA)
		return ASResp{Mapping: m, OK: ok, Outcome: OutcomeOK}
	}
	return ASResp{Outcome: Outcome("unknown-read:" + op.Kind)}
}

// DispatchWrite implements nr.DataStructure.
func (d *asDS) DispatchWrite(op ASWrite) ASResp {
	switch op.Kind {
	case "map":
		err := d.as.Map(op.VA, op.Frame, op.Size, op.Flags)
		return ASResp{Outcome: ClassifyError(err)}
	case "unmap":
		frame, err := d.as.Unmap(op.VA)
		return ASResp{Outcome: ClassifyError(err), Frame: frame}
	case "protect":
		type protector interface {
			Protect(mmu.VAddr, mmu.Flags) error
		}
		if p, ok := d.as.(protector); ok {
			return ASResp{Outcome: ClassifyError(p.Protect(op.VA, op.Flags))}
		}
		return ASResp{Outcome: Outcome("protect-unsupported")}
	}
	return ASResp{Outcome: Outcome("unknown-write:" + op.Kind)}
}

// Variant selects an implementation for replicated address spaces.
type Variant int

// Address-space implementation variants.
const (
	VariantVerified Variant = iota
	VariantUnverified
)

func (v Variant) String() string {
	if v == VariantVerified {
		return "verified"
	}
	return "unverified"
}

// ReplicatedOptions configures NewReplicated.
type ReplicatedOptions struct {
	Variant  Variant
	Replicas int
	LogSize  int
	// MemPerReplica is the simulated physical memory per replica
	// (default 256 MiB).
	MemPerReplica mem.PAddr
}

// ReplicatedAS is an NR-replicated address space.
type ReplicatedAS struct {
	NR *nr.NR[ASRead, ASWrite, ASResp]
}

// NewReplicated builds an NR instance whose replicas are independent
// page-table trees of the chosen variant. Replica creation is
// deterministic, so identical op sequences keep them bit-equivalent.
func NewReplicated(opts ReplicatedOptions) (*ReplicatedAS, error) {
	if opts.MemPerReplica == 0 {
		opts.MemPerReplica = 256 << 20
	}
	var createErr error
	n := nr.New(nr.Options{Replicas: opts.Replicas, LogSize: opts.LogSize},
		func() nr.DataStructure[ASRead, ASWrite, ASResp] {
			pm := mem.New(opts.MemPerReplica)
			src := NewSimpleFrameSource(pm, 0x1000, opts.MemPerReplica/4)
			var as AddressSpace
			var err error
			if opts.Variant == VariantVerified {
				as, err = NewVerified(pm, src, nil)
			} else {
				as, err = NewUnverified(pm, src, nil)
			}
			if err != nil && createErr == nil {
				createErr = err
			}
			return &asDS{as: as}
		})
	if createErr != nil {
		return nil, fmt.Errorf("pt: replica creation failed: %w", createErr)
	}
	return &ReplicatedAS{NR: n}, nil
}

// Register attaches a thread ("core") to the given replica ("node").
func (r *ReplicatedAS) Register(replica int) (*nr.ThreadContext[ASRead, ASWrite, ASResp], error) {
	return r.NR.Register(replica)
}
