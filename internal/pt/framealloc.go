package pt

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// SimpleFrameSource is a deterministic free-list frame allocator over a
// physical address range, used by tests, the refinement harness, and
// the benchmarks (the production kernel uses internal/mm's buddy
// allocator instead). Frames are zeroed on allocation, as FrameSource
// requires. Not safe for concurrent use — each NR replica owns its own.
type SimpleFrameSource struct {
	m           *mem.PhysMem
	next, end   mem.PAddr
	free        []mem.PAddr
	outstanding map[mem.PAddr]bool
}

// NewSimpleFrameSource allocates frames from [start, end) of m.
func NewSimpleFrameSource(m *mem.PhysMem, start, end mem.PAddr) *SimpleFrameSource {
	return &SimpleFrameSource{
		m:           m,
		next:        start.FrameBase(),
		end:         end,
		outstanding: make(map[mem.PAddr]bool),
	}
}

// AllocFrame implements FrameSource.
func (s *SimpleFrameSource) AllocFrame() (mem.PAddr, error) {
	var f mem.PAddr
	if n := len(s.free); n > 0 {
		f = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if s.next+mem.PageSize > s.end {
			return 0, fmt.Errorf("frame source exhausted at %v", s.next)
		}
		f = s.next
		s.next += mem.PageSize
	}
	if err := s.m.ZeroFrame(f); err != nil {
		return 0, err
	}
	s.outstanding[f] = true
	return f, nil
}

// FreeFrame implements FrameSource.
func (s *SimpleFrameSource) FreeFrame(f mem.PAddr) error {
	if !s.outstanding[f] {
		return fmt.Errorf("frame source: double free or foreign frame %v", f)
	}
	delete(s.outstanding, f)
	s.free = append(s.free, f)
	return nil
}

// Outstanding returns the number of allocated-but-unfreed frames; the
// page-table invariant relates it to the live table count.
func (s *SimpleFrameSource) Outstanding() int { return len(s.outstanding) }
