package pt

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/spec/sm"
)

// This file is the §5 "high-level spec": the page table as a
// mathematical map from virtual page base to mapping, with map, unmap
// and resolve as state-machine transitions. It is pure — no physical
// memory, no bits — and is what the implementation is checked against
// through the MMU interpretation function (pt_refine.go).

// AbstractState is the high-level view: virtual page base -> mapping.
type AbstractState map[mmu.VAddr]Mapping

// Clone copies the state.
func (s AbstractState) Clone() AbstractState {
	out := make(AbstractState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Equal reports deep equality.
func (s AbstractState) Equal(o AbstractState) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Key returns a canonical fingerprint.
func (s AbstractState) Key() string {
	keys := make([]uint64, 0, len(s))
	for k := range s {
		keys = append(keys, uint64(k))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		m := s[mmu.VAddr(k)]
		fmt.Fprintf(&b, "%x>%x.%x.%v;", k, uint64(m.Frame), m.PageSize, m.Flags)
	}
	return b.String()
}

// overlaps reports whether mapping a page of `size` at va would overlap
// an existing mapping (in either direction: the new page contains an
// existing base, or an existing huge page contains va).
func (s AbstractState) overlaps(va mmu.VAddr, size uint64) bool {
	for base, m := range s {
		if uint64(va) < uint64(base)+m.PageSize && uint64(base) < uint64(va)+size {
			return true
		}
	}
	return false
}

// Outcome is the spec-level result class of an operation; implementation
// errors are folded into these classes for comparison.
type Outcome string

// Outcome classes.
const (
	OutcomeOK            Outcome = "ok"
	OutcomeAlreadyMapped Outcome = "already-mapped"
	OutcomeNotMapped     Outcome = "not-mapped"
	OutcomeMisaligned    Outcome = "misaligned"
	OutcomeNonCanonical  Outcome = "non-canonical"
	OutcomeBadSize       Outcome = "bad-size"
	OutcomeNoMem         Outcome = "no-mem"
)

// ClassifyError maps an implementation error to its outcome class.
func ClassifyError(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, ErrAlreadyMapped), errors.Is(err, ErrHugeConflict):
		return OutcomeAlreadyMapped
	case errors.Is(err, ErrNotMapped):
		return OutcomeNotMapped
	case errors.Is(err, ErrMisaligned):
		return OutcomeMisaligned
	case errors.Is(err, ErrNonCanonical):
		return OutcomeNonCanonical
	case errors.Is(err, ErrBadPageSize):
		return OutcomeBadSize
	case errors.Is(err, ErrOutOfMemory):
		return OutcomeNoMem
	default:
		return Outcome("unknown:" + err.Error())
	}
}

// SpecMap is the high-level map transition (the paper's map spec fn):
// the precondition classification plus the state update. It is pure.
func SpecMap(pre AbstractState, va mmu.VAddr, frame mem.PAddr, size uint64, flags mmu.Flags) (AbstractState, Outcome) {
	switch {
	case size != mmu.L1PageSize && size != mmu.L2PageSize:
		return pre, OutcomeBadSize
	case !va.IsCanonical():
		return pre, OutcomeNonCanonical
	case uint64(va)%size != 0 || uint64(frame)%size != 0:
		return pre, OutcomeMisaligned
	case pre.overlaps(va, size):
		return pre, OutcomeAlreadyMapped
	}
	post := pre.Clone()
	post[va] = Mapping{Frame: frame, PageSize: size, Flags: flags}
	return post, OutcomeOK
}

// SpecUnmap is the high-level unmap transition.
func SpecUnmap(pre AbstractState, va mmu.VAddr) (AbstractState, mem.PAddr, Outcome) {
	if !va.IsCanonical() {
		return pre, 0, OutcomeNonCanonical
	}
	m, ok := pre[va]
	if !ok {
		return pre, 0, OutcomeNotMapped
	}
	post := pre.Clone()
	delete(post, va)
	return post, m.Frame, OutcomeOK
}

// SpecResolve is the high-level resolve function: pure lookup covering
// interior addresses of huge pages.
func SpecResolve(s AbstractState, va mmu.VAddr) (Mapping, bool) {
	if !va.IsCanonical() {
		return Mapping{}, false
	}
	for _, size := range []uint64{mmu.L1PageSize, mmu.L2PageSize, mmu.L3PageSize} {
		if m, ok := s[va.PageBase(size)]; ok && m.PageSize == size {
			return m, true
		}
	}
	return Mapping{}, false
}

// Event constructors. The event string is a canonical encoding of the
// operation and its observed outcome; Allows decodes it and replays the
// spec transition.

// EvMap labels a map operation.
func EvMap(va mmu.VAddr, frame mem.PAddr, size uint64, flags mmu.Flags, out Outcome) sm.Event {
	return sm.Eventf("map %#x %#x %#x %s %s", uint64(va), uint64(frame), size, flagStr(flags), out)
}

// EvUnmap labels an unmap operation.
func EvUnmap(va mmu.VAddr, frame mem.PAddr, out Outcome) sm.Event {
	return sm.Eventf("unmap %#x %#x %s", uint64(va), uint64(frame), out)
}

// EvResolve labels a resolve operation (a read: state must not change).
func EvResolve(va mmu.VAddr, m Mapping, ok bool) sm.Event {
	return sm.Eventf("resolve %#x %#x %#x %s %t", uint64(va), uint64(m.Frame), m.PageSize, flagStr(m.Flags), ok)
}

func flagStr(f mmu.Flags) string {
	s := ""
	if f.Writable {
		s += "W"
	}
	if f.User {
		s += "U"
	}
	if f.NoExec {
		s += "X"
	}
	if f.Global {
		s += "G"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// parseU64 decodes a decimal or 0x-prefixed event field.
func parseU64(s string) (uint64, bool) {
	v, err := strconv.ParseUint(s, 0, 64)
	return v, err == nil
}

func parseFlags(s string) mmu.Flags {
	return mmu.Flags{
		Writable: strings.Contains(s, "W"),
		User:     strings.Contains(s, "U"),
		NoExec:   strings.Contains(s, "X"),
		Global:   strings.Contains(s, "G"),
	}
}

// Spec returns the high-level page-table specification as an sm.Spec.
// Allows replays the pure spec transition for the decoded event and
// compares outcome and post-state — the spec is the single source of
// truth; the event is just its serialization.
func Spec() *sm.Spec[AbstractState] {
	return &sm.Spec[AbstractState]{
		Name:  "pagetable",
		Init:  func() []AbstractState { return []AbstractState{{}} },
		Equal: func(a, b AbstractState) bool { return a.Equal(b) },
		Key:   func(s AbstractState) string { return s.Key() },
		Allows: func(from AbstractState, ev sm.Event, to AbstractState) bool {
			fields := strings.Fields(string(ev))
			if len(fields) == 0 {
				return false
			}
			switch fields[0] {
			case "map":
				if len(fields) != 6 {
					return false
				}
				va, ok1 := parseU64(fields[1])
				frame, ok2 := parseU64(fields[2])
				size, ok3 := parseU64(fields[3])
				if !ok1 || !ok2 || !ok3 {
					return false
				}
				post, out := SpecMap(from, mmu.VAddr(va), mem.PAddr(frame), size, parseFlags(fields[4]))
				return string(out) == fields[5] && post.Equal(to)
			case "unmap":
				if len(fields) != 4 {
					return false
				}
				va, ok1 := parseU64(fields[1])
				frame, ok2 := parseU64(fields[2])
				if !ok1 || !ok2 {
					return false
				}
				post, gotFrame, out := SpecUnmap(from, mmu.VAddr(va))
				if string(out) != fields[3] || !post.Equal(to) {
					return false
				}
				return out != OutcomeOK || uint64(gotFrame) == frame
			case "resolve":
				if len(fields) != 6 {
					return false
				}
				va, ok1 := parseU64(fields[1])
				frame, ok2 := parseU64(fields[2])
				size, ok3 := parseU64(fields[3])
				if !ok1 || !ok2 || !ok3 {
					return false
				}
				m, ok := SpecResolve(from, mmu.VAddr(va))
				if fmt.Sprint(ok) != fields[5] {
					return false
				}
				if ok && (uint64(m.Frame) != frame || m.PageSize != size || flagStr(m.Flags) != fields[4]) {
					return false
				}
				return from.Equal(to) // reads never change state
			}
			return false
		},
		Invariant: func(s AbstractState) error {
			// No two mappings overlap; all bases aligned; frames aligned.
			for va, m := range s {
				if uint64(va)%m.PageSize != 0 {
					return fmt.Errorf("base %v misaligned for size %d", va, m.PageSize)
				}
				if uint64(m.Frame)%m.PageSize != 0 {
					return fmt.Errorf("frame %v misaligned for size %d", m.Frame, m.PageSize)
				}
				if m.PageSize != mmu.L1PageSize && m.PageSize != mmu.L2PageSize {
					return fmt.Errorf("bad page size %d", m.PageSize)
				}
			}
			bases := make([]mmu.VAddr, 0, len(s))
			for va := range s {
				bases = append(bases, va)
			}
			sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
			for i := 1; i < len(bases); i++ {
				prev, cur := bases[i-1], bases[i]
				if uint64(prev)+s[prev].PageSize > uint64(cur) {
					return fmt.Errorf("mappings %v and %v overlap", prev, cur)
				}
			}
			return nil
		},
	}
}

// FiniteSpec returns a tiny finite instance of the page-table spec for
// exhaustive exploration: `slots` 4-KiB pages over `frames` frames, all
// flags fixed. Exploring it validates the spec itself (the paper's spec
// sanity obligation).
func FiniteSpec(slots, frames int) *sm.Spec[AbstractState] {
	base := Spec()
	sp := *base
	sp.Name = "pagetable-finite"
	sp.Next = func(s AbstractState) []sm.Step[AbstractState] {
		var out []sm.Step[AbstractState]
		fl := mmu.Flags{Writable: true}
		for i := 0; i < slots; i++ {
			va := mmu.VAddr(uint64(i) * mmu.L1PageSize)
			for f := 0; f < frames; f++ {
				frame := mem.PAddr(uint64(f) * mmu.L1PageSize)
				post, outc := SpecMap(s, va, frame, mmu.L1PageSize, fl)
				out = append(out, sm.Step[AbstractState]{
					Event: EvMap(va, frame, mmu.L1PageSize, fl, outc), To: post})
			}
			post, frame, outc := SpecUnmap(s, va)
			out = append(out, sm.Step[AbstractState]{Event: EvUnmap(va, frame, outc), To: post})
		}
		return out
	}
	return &sp
}
