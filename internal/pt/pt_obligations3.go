package pt

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: resolve is observationally pure, and the
// ghost-check configuration does not change behavior (only cost).
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "pt", Name: "resolve-is-pure", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				for _, op := range GenTrace(r, 100) {
					if op.Kind == "map" {
						_ = v.Map(op.VA, op.Frame, op.Size, op.Flags)
					}
				}
				pre, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				preWrites := pm.Stats().Writes
				for i := 0; i < 500; i++ {
					v.Resolve(mmu.VAddr(r.Uint64()) & 0x7fff_ffff_f000)
				}
				if pm.Stats().Writes != preWrites {
					return fmt.Errorf("resolve wrote to physical memory")
				}
				post, err := Interpret(pm, v.Root())
				if err != nil {
					return err
				}
				if !pre.Equal(post) {
					return fmt.Errorf("resolve changed the abstraction")
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "ghost-checks-behavior-neutral", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// The same trace with ghost checks on and off produces
				// identical outcomes and final abstractions — the checks
				// observe, never steer.
				mk := func(ghost bool) (*Verified, *mem.PhysMem, error) {
					pm := mem.New(128 << 20)
					src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
					v, err := NewVerified(pm, src, nil)
					if err != nil {
						return nil, nil, err
					}
					v.EnableGhostChecks(ghost)
					return v, pm, nil
				}
				vOn, pmOn, err := mk(true)
				if err != nil {
					return err
				}
				vOff, pmOff, err := mk(false)
				if err != nil {
					return err
				}
				for i, op := range GenTrace(r, 300) {
					switch op.Kind {
					case "map":
						a := ClassifyError(vOn.Map(op.VA, op.Frame, op.Size, op.Flags))
						b := ClassifyError(vOff.Map(op.VA, op.Frame, op.Size, op.Flags))
						if a != b {
							return fmt.Errorf("op %d map diverged: %s vs %s", i, a, b)
						}
					case "unmap":
						fa, ea := vOn.Unmap(op.VA)
						fb, eb := vOff.Unmap(op.VA)
						if ClassifyError(ea) != ClassifyError(eb) || fa != fb {
							return fmt.Errorf("op %d unmap diverged", i)
						}
					}
				}
				a, err := Interpret(pmOn, vOn.Root())
				if err != nil {
					return err
				}
				b, err := Interpret(pmOff, vOff.Root())
				if err != nil {
					return err
				}
				if !a.Equal(b) {
					return fmt.Errorf("ghost checks changed final state")
				}
				return nil
			}},
	)
}
