package pt

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/lin"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/spec/sm"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the page-table verification conditions
// with the VC engine. These are the §5 proof, decomposed: spec sanity,
// implementation invariants, the refinement simulation through the MMU
// interpretation function, baseline equivalence, and linearizability of
// the NR-replicated structure.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "pt", Name: "spec-explore-finite", Kind: verifier.KindModelCheck,
			Check: func(r *rand.Rand) error {
				res, err := sm.Explore(FiniteSpec(3, 2), 200_000)
				if err != nil {
					return err
				}
				if res.Truncated {
					return fmt.Errorf("finite spec should be exhaustible, saw %d states", res.States)
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "spec-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// Random walks over the pure spec keep its invariant.
				spec := Spec()
				s := AbstractState{}
				for i := 0; i < 2000; i++ {
					va := mmu.VAddr(uint64(r.Intn(64)) * mmu.L1PageSize)
					if r.Intn(2) == 0 {
						s, _ = SpecMap(s, va, mem.PAddr(uint64(r.Intn(16))*mmu.L1PageSize),
							mmu.L1PageSize, mmu.Flags{Writable: true})
					} else {
						s, _, _ = SpecUnmap(s, va)
					}
					if err := spec.Invariant(s); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "map-unmap-refines-spec-verified", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return RunRandomTrace(r, true, 400) }},
		verifier.Obligation{Module: "pt", Name: "map-unmap-refines-spec-unverified", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return RunRandomTrace(r, false, 400) }},
		verifier.Obligation{Module: "pt", Name: "verified-equals-baseline", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return CheckEquivalence(r, 600) }},
		verifier.Obligation{Module: "pt", Name: "well-formedness-invariant", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				for _, op := range GenTrace(r, 300) {
					switch op.Kind {
					case "map":
						_ = v.Map(op.VA, op.Frame, op.Size, op.Flags)
					case "unmap":
						_, _ = v.Unmap(op.VA)
					}
					if err := v.CheckInvariant(); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "resolve-agrees-with-mmu-walk", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// The software walk (Resolve) and the hardware walk
				// (mmu.Walker) must agree on every probed address.
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				w := mmu.Walker{Mem: pm}
				for _, op := range GenTrace(r, 300) {
					switch op.Kind {
					case "map":
						_ = v.Map(op.VA, op.Frame, op.Size, op.Flags)
					case "unmap":
						_, _ = v.Unmap(op.VA)
					}
					probe := op.VA + mmu.VAddr(r.Intn(mmu.L1PageSize))
					m, ok := v.Resolve(probe)
					res := w.Walk(v.Root(), probe, mmu.AccessRead)
					if ok != (res.Fault == nil) {
						return fmt.Errorf("resolve(%v)=%t but hardware walk fault=%v", probe, ok, res.Fault)
					}
					if ok {
						wantPA := mem.PAddr(uint64(m.Frame) + uint64(probe)%m.PageSize)
						if res.Translation.PAddr != wantPA {
							return fmt.Errorf("resolve(%v) frame %v disagrees with walk PA %v",
								probe, m.Frame, res.Translation.PAddr)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "unmap-invalidates-tlb", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// End-to-end shootdown: with the MMU's TLB warm, unmap
				// through the Verified space (wired to Invlpg) must make
				// subsequent translations fault.
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 16<<20)
				var u *mmu.MMU
				v, err := NewVerified(pm, src, func(va mmu.VAddr) { u.Invlpg(va) })
				if err != nil {
					return err
				}
				u = mmu.New(pm)
				u.SetRoot(v.Root(), 1)
				va := mmu.VAddr(0x4000_0000)
				frame := mem.PAddr(0x80_0000)
				if err := v.Map(va, frame, mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
					return err
				}
				if _, f := u.Translate(va, mmu.AccessRead); f != nil {
					return fmt.Errorf("translate after map faulted: %v", f)
				}
				if _, err := v.Unmap(va); err != nil {
					return err
				}
				if _, f := u.Translate(va, mmu.AccessRead); f == nil {
					return fmt.Errorf("translation survived unmap: TLB shootdown missing")
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "directory-frames-reclaimed", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Mapping then unmapping everything must return the
				// frame source to exactly the root frame outstanding.
				pm := mem.New(64 << 20)
				src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
				v, err := NewVerified(pm, src, nil)
				if err != nil {
					return err
				}
				var vas []mmu.VAddr
				for i := 0; i < 50; i++ {
					va := mmu.VAddr(uint64(r.Intn(1<<20)) * mmu.L1PageSize)
					if err := v.Map(va, mem.PAddr(0x100000), mmu.L1PageSize, mmu.Flags{}); err == nil {
						vas = append(vas, va)
					}
				}
				for _, va := range vas {
					if _, err := v.Unmap(va); err != nil {
						return err
					}
				}
				if got := src.Outstanding(); got != 1 {
					return fmt.Errorf("outstanding frames after full unmap = %d, want 1 (root)", got)
				}
				return nil
			}},
		verifier.Obligation{Module: "pt", Name: "nr-replicated-linearizable", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error { return checkNRLinearizable(r) }},
		verifier.Obligation{Module: "pt", Name: "nr-replicas-bit-identical", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return checkNRReplicasAgree(r) }},
	)
}

// checkNRLinearizable drives a replicated address space from concurrent
// goroutines, records the history, and checks it against the sequential
// spec.
func checkNRLinearizable(r *rand.Rand) error {
	ras, err := NewReplicated(ReplicatedOptions{Variant: VariantVerified, Replicas: 2, MemPerReplica: 64 << 20})
	if err != nil {
		return err
	}
	type opIn struct {
		write bool
		w     ASWrite
		rd    ASRead
	}
	rec := lin.NewRecorder[opIn, ASResp]()
	done := make(chan error, 4)
	// Pre-generate per-thread ops from r (deterministic).
	mkOps := func() []opIn {
		ops := make([]opIn, 12)
		for i := range ops {
			va := mmu.VAddr(uint64(r.Intn(4)) * mmu.L1PageSize)
			switch r.Intn(3) {
			case 0:
				ops[i] = opIn{write: true, w: ASWrite{Kind: "map", VA: va,
					Frame: mem.PAddr(uint64(1+r.Intn(4)) * mmu.L1PageSize), Size: mmu.L1PageSize}}
			case 1:
				ops[i] = opIn{write: true, w: ASWrite{Kind: "unmap", VA: va}}
			default:
				ops[i] = opIn{rd: ASRead{Kind: "resolve", VA: va}}
			}
		}
		return ops
	}
	perThread := [][]opIn{mkOps(), mkOps(), mkOps(), mkOps()}
	for g := 0; g < 4; g++ {
		go func(g int) {
			c, err := ras.Register(g % 2)
			if err != nil {
				done <- err
				return
			}
			for _, op := range perThread[g] {
				p := rec.Invoke(g, op)
				var resp ASResp
				if op.write {
					resp = c.Execute(op.w)
				} else {
					resp = c.ExecuteRead(op.rd)
				}
				p.Return(resp)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			return err
		}
	}
	model := lin.Model[AbstractState, opIn, ASResp]{
		Init: func() AbstractState { return AbstractState{} },
		Apply: func(s AbstractState, in opIn) (AbstractState, ASResp) {
			if in.write {
				switch in.w.Kind {
				case "map":
					post, out := SpecMap(s, in.w.VA, in.w.Frame, in.w.Size, in.w.Flags)
					return post, ASResp{Outcome: out}
				case "unmap":
					post, frame, out := SpecUnmap(s, in.w.VA)
					return post, ASResp{Outcome: out, Frame: frame}
				}
				return s, ASResp{}
			}
			m, ok := SpecResolve(s, in.rd.VA)
			return s, ASResp{Mapping: m, OK: ok, Outcome: OutcomeOK}
		},
		Key:       func(s AbstractState) string { return s.Key() },
		EqualResp: func(a, b ASResp) bool { return a == b },
	}
	return lin.Check(model, rec.History())
}

// checkNRReplicasAgree runs a workload and verifies all replicas
// interpret to the same abstract state.
func checkNRReplicasAgree(r *rand.Rand) error {
	ras, err := NewReplicated(ReplicatedOptions{Variant: VariantVerified, Replicas: 3, MemPerReplica: 64 << 20})
	if err != nil {
		return err
	}
	c, err := ras.Register(0)
	if err != nil {
		return err
	}
	for i := 0; i < 200; i++ {
		va := mmu.VAddr(uint64(r.Intn(32)) * mmu.L1PageSize)
		if r.Intn(2) == 0 {
			c.Execute(ASWrite{Kind: "map", VA: va,
				Frame: mem.PAddr(uint64(1+r.Intn(8)) * mmu.L1PageSize), Size: mmu.L1PageSize})
		} else {
			c.Execute(ASWrite{Kind: "unmap", VA: va})
		}
	}
	var states []AbstractState
	var ierr error
	for i := 0; i < ras.NR.NumReplicas(); i++ {
		ras.NR.Replica(i).Inspect(func(d nr.DataStructure[ASRead, ASWrite, ASResp]) {
			a := d.(*asDS)
			type memer interface {
				Mem() *mem.PhysMem
				Root() mem.PAddr
			}
			m := a.as.(memer)
			st, e := Interpret(m.Mem(), m.Root())
			if e != nil && ierr == nil {
				ierr = e
			}
			states = append(states, st)
		})
	}
	if ierr != nil {
		return ierr
	}
	for i := 1; i < len(states); i++ {
		if !states[0].Equal(states[i]) {
			return fmt.Errorf("replica %d abstraction differs from replica 0", i)
		}
	}
	return nil
}
