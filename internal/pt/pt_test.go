package pt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/verifier"
)

// newTestSpace returns a Verified space over fresh memory.
func newTestSpace(t *testing.T) (*Verified, *mem.PhysMem, *SimpleFrameSource) {
	t.Helper()
	pm := mem.New(64 << 20)
	src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
	v, err := NewVerified(pm, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v, pm, src
}

func TestMapResolveUnmap(t *testing.T) {
	v, _, _ := newTestSpace(t)
	va := mmu.VAddr(0x4000_0000)
	frame := mem.PAddr(0x80_0000)
	fl := mmu.Flags{Writable: true, User: true}

	if err := v.Map(va, frame, mmu.L1PageSize, fl); err != nil {
		t.Fatalf("Map: %v", err)
	}
	m, ok := v.Resolve(va + 0x123)
	if !ok || m.Frame != frame || m.PageSize != mmu.L1PageSize || m.Flags != fl {
		t.Fatalf("Resolve = %+v, %t", m, ok)
	}
	got, err := v.Unmap(va)
	if err != nil || got != frame {
		t.Fatalf("Unmap = %v, %v", got, err)
	}
	if _, ok := v.Resolve(va); ok {
		t.Fatal("resolve after unmap succeeded")
	}
	if v.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d", v.MappedPages())
	}
}

func TestMapErrors(t *testing.T) {
	v, _, _ := newTestSpace(t)
	va := mmu.VAddr(0x4000_0000)

	if err := v.Map(va+1, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned va: %v", err)
	}
	if err := v.Map(va, 0x80_0001, mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned frame: %v", err)
	}
	if err := v.Map(va, 0x80_0000, 1234, mmu.Flags{}); !errors.Is(err, ErrBadPageSize) {
		t.Errorf("bad size: %v", err)
	}
	if err := v.Map(0x8000_0000_0000, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("non-canonical: %v", err)
	}
	if err := v.Map(va, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); err != nil {
		t.Fatal(err)
	}
	if err := v.Map(va, 0x90_0000, mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("double map: %v", err)
	}
}

func TestUnmapErrors(t *testing.T) {
	v, _, _ := newTestSpace(t)
	if _, err := v.Unmap(0x4000_0000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmap unmapped: %v", err)
	}
	if _, err := v.Unmap(0x8000_0000_0000); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("non-canonical: %v", err)
	}
	// Interior address of a huge page.
	if err := v.Map(0x4000_0000, 0x80_0000, mmu.L2PageSize, mmu.Flags{}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Unmap(0x4000_0000 + mmu.L1PageSize); !errors.Is(err, ErrNotMapped) {
		t.Errorf("interior unmap: %v", err)
	}
	if _, err := v.Unmap(0x4000_0000); err != nil {
		t.Errorf("huge unmap: %v", err)
	}
}

func TestHugePageMapping(t *testing.T) {
	v, pm, _ := newTestSpace(t)
	va := mmu.VAddr(0x8000_0000)
	frame := mem.PAddr(0x40_0000)
	if err := v.Map(va, frame, mmu.L2PageSize, mmu.Flags{Writable: true}); err != nil {
		t.Fatal(err)
	}
	// A 4K map inside the huge page must fail.
	if err := v.Map(va+mmu.L1PageSize, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrHugeConflict) {
		t.Errorf("map under huge page: %v", err)
	}
	// The hardware must translate an interior address.
	w := mmu.Walker{Mem: pm}
	res := w.Walk(v.Root(), va+0x155000, mmu.AccessRead)
	if res.Fault != nil {
		t.Fatalf("walk: %v", res.Fault)
	}
	if res.Translation.PAddr != frame+0x155000 {
		t.Errorf("PA = %v", res.Translation.PAddr)
	}
}

func TestMappingVisibleToMMU(t *testing.T) {
	v, pm, _ := newTestSpace(t)
	u := mmu.New(pm)
	u.SetRoot(v.Root(), 1)
	va := mmu.VAddr(0x1_0000_0000)
	frame := mem.PAddr(0x90_0000)
	if err := v.Map(va, frame, mmu.L1PageSize, mmu.Flags{Writable: true, User: true}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the page table")
	if f := u.WriteUser(va, msg); f != nil {
		t.Fatalf("user write: %v", f)
	}
	phys := make([]byte, len(msg))
	if err := pm.Read(frame, phys); err != nil {
		t.Fatal(err)
	}
	if string(phys) != string(msg) {
		t.Fatalf("physical = %q", phys)
	}
}

func TestProtect(t *testing.T) {
	v, pm, _ := newTestSpace(t)
	va := mmu.VAddr(0x4000_0000)
	if err := v.Map(va, 0x80_0000, mmu.L1PageSize, mmu.Flags{Writable: true, User: true}); err != nil {
		t.Fatal(err)
	}
	if err := v.Protect(va, mmu.Flags{User: true}); err != nil {
		t.Fatal(err)
	}
	w := mmu.Walker{Mem: pm}
	if res := w.Walk(v.Root(), va, mmu.AccessUserWrite); res.Fault == nil {
		t.Error("write allowed after write-protect")
	}
	if res := w.Walk(v.Root(), va, mmu.AccessUserRead); res.Fault != nil {
		t.Errorf("read blocked after write-protect: %v", res.Fault)
	}
	if err := v.Protect(va+mmu.L1PageSize, mmu.Flags{}); !errors.Is(err, ErrNotMapped) {
		t.Errorf("protect unmapped: %v", err)
	}
}

func TestDirectoryReclamation(t *testing.T) {
	v, _, src := newTestSpace(t)
	base := src.Outstanding() // root only
	if base != 1 {
		t.Fatalf("outstanding after create = %d", base)
	}
	va := mmu.VAddr(0x7f00_0000_0000)
	if err := v.Map(va, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); err != nil {
		t.Fatal(err)
	}
	if got := src.Outstanding(); got != 4 {
		t.Fatalf("outstanding after deep map = %d, want 4 (root + 3 directories)", got)
	}
	if _, err := v.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if got := src.Outstanding(); got != 1 {
		t.Fatalf("outstanding after unmap = %d, want 1", got)
	}
}

func TestNeighborPagesShareDirectories(t *testing.T) {
	v, _, src := newTestSpace(t)
	va := mmu.VAddr(0x4000_0000)
	for i := uint64(0); i < 16; i++ {
		if err := v.Map(va+mmu.VAddr(i*mmu.L1PageSize), mem.PAddr(0x80_0000+i*mmu.L1PageSize),
			mmu.L1PageSize, mmu.Flags{}); err != nil {
			t.Fatal(err)
		}
	}
	// root + 3 directories regardless of 16 neighbour mappings.
	if got := src.Outstanding(); got != 4 {
		t.Fatalf("outstanding = %d, want 4", got)
	}
	// Unmapping 15 keeps the directories; the last frees them.
	for i := uint64(0); i < 15; i++ {
		if _, err := v.Unmap(va + mmu.VAddr(i*mmu.L1PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.Outstanding(); got != 4 {
		t.Fatalf("outstanding after partial unmap = %d, want 4", got)
	}
	if _, err := v.Unmap(va + mmu.VAddr(15*mmu.L1PageSize)); err != nil {
		t.Fatal(err)
	}
	if got := src.Outstanding(); got != 1 {
		t.Fatalf("outstanding after final unmap = %d, want 1", got)
	}
}

func TestInvariantHoldsThroughWorkload(t *testing.T) {
	v, _, _ := newTestSpace(t)
	r := rand.New(rand.NewSource(7))
	for i, op := range GenTrace(r, 500) {
		switch op.Kind {
		case "map":
			_ = v.Map(op.VA, op.Frame, op.Size, op.Flags)
		case "unmap":
			_, _ = v.Unmap(op.VA)
		case "resolve":
			_, _ = v.Resolve(op.VA)
		}
		if i%50 == 0 {
			if err := v.CheckInvariant(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRefinementVerified(t *testing.T) {
	if err := RunRandomTrace(rand.New(rand.NewSource(11)), true, 300); err != nil {
		t.Fatal(err)
	}
}

func TestRefinementUnverified(t *testing.T) {
	if err := RunRandomTrace(rand.New(rand.NewSource(12)), false, 300); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalenceVerifiedUnverified(t *testing.T) {
	if err := CheckEquivalence(rand.New(rand.NewSource(13)), 500); err != nil {
		t.Fatal(err)
	}
}

// TestRefinementCatchesInjectedBug plants a classic paging bug — unmap
// forgets to clear the entry when freeing directories is skipped — and
// requires the harness to flag it.
func TestRefinementCatchesInjectedBug(t *testing.T) {
	pm := mem.New(64 << 20)
	src := NewSimpleFrameSource(pm, 0x1000, 32<<20)
	v, err := NewVerified(pm, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(&buggyUnmap{v}, pm)
	if err != nil {
		t.Fatal(err)
	}
	va := mmu.VAddr(0x4000_0000)
	if err := h.Apply(TraceOp{Kind: "map", VA: va, Frame: 0x80_0000, Size: mmu.L1PageSize}); err != nil {
		t.Fatal(err)
	}
	err = h.Apply(TraceOp{Kind: "unmap", VA: va})
	if err == nil {
		t.Fatal("refinement checker missed a no-op unmap")
	}
}

// buggyUnmap reports success on unmap without touching memory.
type buggyUnmap struct{ *Verified }

func (b *buggyUnmap) Unmap(va mmu.VAddr) (mem.PAddr, error) {
	m, ok := b.Resolve(va)
	if !ok {
		return 0, ErrNotMapped
	}
	return m.Frame, nil // "forgot" to clear the PTE
}

func TestSpecResolveInteriorHugePage(t *testing.T) {
	s := AbstractState{
		0x4000_0000: {Frame: 0x40_0000, PageSize: mmu.L2PageSize, Flags: mmu.Flags{Writable: true}},
	}
	m, ok := SpecResolve(s, 0x4000_0000+0x12345)
	if !ok || m.Frame != 0x40_0000 {
		t.Fatalf("interior resolve = %+v, %t", m, ok)
	}
	if _, ok := SpecResolve(s, 0x4020_0000); ok {
		t.Fatal("resolve past huge page succeeded")
	}
}

func TestSpecOverlapRules(t *testing.T) {
	s := AbstractState{}
	s2, out := SpecMap(s, 0x4000_0000, 0x40_0000, mmu.L2PageSize, mmu.Flags{})
	if out != OutcomeOK {
		t.Fatal(out)
	}
	// 4K inside the 2M page.
	if _, out := SpecMap(s2, 0x4000_0000+mmu.L1PageSize, 0x80_0000, mmu.L1PageSize, mmu.Flags{}); out != OutcomeAlreadyMapped {
		t.Errorf("overlap (inside huge) = %s", out)
	}
	// 2M covering an existing 4K page.
	s3 := AbstractState{0x4010_0000: {Frame: 0x80_0000, PageSize: mmu.L1PageSize}}
	if _, out := SpecMap(s3, 0x4000_0000, 0x40_0000, mmu.L2PageSize, mmu.Flags{}); out != OutcomeAlreadyMapped {
		t.Errorf("overlap (huge over small) = %s", out)
	}
}

// Property: map(va); resolve(va) returns exactly what was mapped, for
// arbitrary aligned inputs.
func TestQuickMapResolve(t *testing.T) {
	pm := mem.New(256 << 20)
	src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
	v, err := NewVerified(pm, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pageIdx uint32, frameIdx uint16, w, usr bool) bool {
		va := mmu.VAddr(uint64(pageIdx)%(1<<24)) * mmu.L1PageSize
		frame := mem.PAddr(0x40_0000) + mem.PAddr(frameIdx)*mmu.L1PageSize
		fl := mmu.Flags{Writable: w, User: usr}
		if err := v.Map(va, frame, mmu.L1PageSize, fl); err != nil {
			// Collision with a previous iteration's mapping is fine.
			return errors.Is(err, ErrAlreadyMapped)
		}
		m, ok := v.Resolve(va)
		return ok && m.Frame == frame && m.Flags == fl && m.PageSize == mmu.L1PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	if g.Len() < 10 {
		t.Fatalf("expected >= 10 pt obligations, got %d", g.Len())
	}
	rep := g.Run(verifier.Options{Seed: 2026})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}

func TestReplicatedVariants(t *testing.T) {
	for _, variant := range []Variant{VariantVerified, VariantUnverified} {
		ras, err := NewReplicated(ReplicatedOptions{Variant: variant, Replicas: 2, MemPerReplica: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		c, err := ras.Register(0)
		if err != nil {
			t.Fatal(err)
		}
		va := mmu.VAddr(0x4000_0000)
		if resp := c.Execute(ASWrite{Kind: "map", VA: va, Frame: 0x80_0000, Size: mmu.L1PageSize}); resp.Outcome != OutcomeOK {
			t.Fatalf("%v map: %s", variant, resp.Outcome)
		}
		c2, err := ras.Register(1)
		if err != nil {
			t.Fatal(err)
		}
		if resp := c2.ExecuteRead(ASRead{Kind: "resolve", VA: va}); !resp.OK || resp.Mapping.Frame != 0x80_0000 {
			t.Fatalf("%v remote resolve: %+v", variant, resp)
		}
		if resp := c.Execute(ASWrite{Kind: "unmap", VA: va}); resp.Outcome != OutcomeOK || resp.Frame != 0x80_0000 {
			t.Fatalf("%v unmap: %+v", variant, resp)
		}
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	v, _, src := newTestSpace(t)
	for i := uint64(0); i < 10; i++ {
		if err := v.Map(mmu.VAddr(0x4000_0000+i*mmu.L2PageSize), 0x80_0000, mmu.L1PageSize, mmu.Flags{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Destroy(); err != nil {
		t.Fatal(err)
	}
	if src.Outstanding() != 0 {
		t.Fatalf("outstanding after destroy = %d", src.Outstanding())
	}
}
