// Package pt implements the paper's §5 prototype: x86-64 page-table
// management (map, unmap, resolve) over simulated physical memory, in
// two variants.
//
//   - Verified: structured the way the paper's proof is layered — every
//     operation is decomposed into explicit tree-walk steps whose
//     intermediate states satisfy the well-formedness invariant, and the
//     package's *_spec.go / *_refine.go files connect it to the
//     high-level specification (a mathematical map from virtual page to
//     mapping) via the MMU interpretation function.
//   - Unverified: the direct NrOS-style baseline used for the Figure
//     1b/1c performance comparison.
//
// Both produce identical architectural bits; "verified" buys the
// refinement obligations, not different behavior — which is exactly the
// paper's claim that verified code can match unverified performance.
package pt

import (
	"errors"
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
)

// Errors returned by address-space operations.
var (
	// ErrMisaligned reports a virtual address or frame not aligned to
	// the requested page size.
	ErrMisaligned = errors.New("pt: misaligned address")
	// ErrAlreadyMapped reports an overlap with an existing mapping.
	ErrAlreadyMapped = errors.New("pt: virtual range already mapped")
	// ErrNotMapped reports an unmap/protect of an unmapped page.
	ErrNotMapped = errors.New("pt: virtual address not mapped")
	// ErrNonCanonical reports a non-canonical virtual address.
	ErrNonCanonical = errors.New("pt: non-canonical virtual address")
	// ErrBadPageSize reports an unsupported page size.
	ErrBadPageSize = errors.New("pt: unsupported page size")
	// ErrOutOfMemory reports table-frame allocation failure.
	ErrOutOfMemory = errors.New("pt: out of memory for page-table frames")
	// ErrHugeConflict reports an operation that would require splitting
	// a huge page (not supported, as in the NrOS prototype).
	ErrHugeConflict = errors.New("pt: operation conflicts with huge page")
)

// FrameSource provides page-table frames. The kernel passes its frame
// allocator (internal/mm); tests pass a simple free-list source.
type FrameSource interface {
	// AllocFrame returns a zeroed, page-aligned frame.
	AllocFrame() (mem.PAddr, error)
	// FreeFrame releases a frame previously returned by AllocFrame.
	FreeFrame(mem.PAddr) error
}

// Mapping is the result of a successful Resolve: the paper's high-level
// view of one page-table entry.
type Mapping struct {
	Frame    mem.PAddr
	PageSize uint64
	Flags    mmu.Flags
}

// AddressSpace is the operation surface of the §5 prototype. The same
// interface is implemented by the Verified and Unverified variants so
// the benchmarks can swap them.
type AddressSpace interface {
	// Map establishes va -> frame for a page of the given size. Both va
	// and frame must be size-aligned; size is 4 KiB or 2 MiB.
	Map(va mmu.VAddr, frame mem.PAddr, size uint64, flags mmu.Flags) error
	// Unmap removes the mapping whose page base is va, returning the
	// frame that was mapped.
	Unmap(va mmu.VAddr) (mem.PAddr, error)
	// Resolve returns the mapping covering va, if any.
	Resolve(va mmu.VAddr) (Mapping, bool)
	// Root returns the PML4 frame (the CR3 value for this space).
	Root() mem.PAddr
}

// checkArgs validates the common map preconditions.
func checkArgs(va mmu.VAddr, frame mem.PAddr, size uint64) error {
	switch size {
	case mmu.L1PageSize, mmu.L2PageSize:
	default:
		return fmt.Errorf("%w: %d", ErrBadPageSize, size)
	}
	if !va.IsCanonical() {
		return fmt.Errorf("%w: %v", ErrNonCanonical, va)
	}
	if uint64(va)%size != 0 {
		return fmt.Errorf("%w: va %v for %d-byte page", ErrMisaligned, va, size)
	}
	if uint64(frame)%size != 0 {
		return fmt.Errorf("%w: frame %v for %d-byte page", ErrMisaligned, frame, size)
	}
	return nil
}

// leafLevel returns the tree level at which a page of the given size is
// installed.
func leafLevel(size uint64) int {
	if size == mmu.L2PageSize {
		return 2
	}
	return 1
}

// InvalidateFunc receives the virtual page base of every unmapped (or
// permission-changed) page so the kernel can perform TLB shootdown. The
// stale-TLB hardware-spec test (internal/hw/mmu) shows why this is a
// correctness obligation, not an optimization.
type InvalidateFunc func(va mmu.VAddr)
