package pt

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/spec/sm"
)

// This file is the refinement harness: it connects the implementation
// (bits in simulated physical memory) to the high-level spec (the
// mathematical map) through the MMU's interpretation function, exactly
// as Figure 2 of the paper draws it:
//
//	high-level spec  <—refines—  page-table impl + hardware spec
//
// The abstraction function of the §5 proof *is* mmu.Walker.Interpret:
// whatever the hardware would decode from memory is the implementation's
// abstract state. The harness executes operations on the implementation,
// re-interprets memory after each, and feeds (event, abstraction) pairs
// to the sm.TraceChecker.

// Interpret computes the abstraction of an address space's current
// memory state via the hardware's interpretation function.
func Interpret(m *mem.PhysMem, root mem.PAddr) (AbstractState, error) {
	w := mmu.Walker{Mem: m}
	raw, err := w.Interpret(root)
	if err != nil {
		return nil, err
	}
	out := make(AbstractState, len(raw))
	for va, tr := range raw {
		out[va] = Mapping{
			Frame:    tr.Frame,
			PageSize: tr.PageSize,
			Flags: mmu.Flags{
				Writable: tr.Writable, User: tr.User,
				NoExec: tr.NoExec, Global: tr.Global,
			},
		}
	}
	return out, nil
}

// TraceOp is one operation of a generated refinement workload.
type TraceOp struct {
	Kind  string // "map", "unmap", "resolve"
	VA    mmu.VAddr
	Frame mem.PAddr
	Size  uint64
	Flags mmu.Flags
}

// Harness drives an AddressSpace and checks each step against the
// high-level spec through the interpretation function.
type Harness struct {
	AS      AddressSpace
	Mem     *mem.PhysMem
	checker *sm.TraceChecker[AbstractState]
}

// NewHarness builds a harness and seeds the checker with the
// abstraction of the initial state (which must be empty).
func NewHarness(as AddressSpace, m *mem.PhysMem) (*Harness, error) {
	h := &Harness{AS: as, Mem: m, checker: &sm.TraceChecker[AbstractState]{Spec: Spec()}}
	abs, err := Interpret(m, as.Root())
	if err != nil {
		return nil, err
	}
	if err := h.checker.Start(abs); err != nil {
		return nil, err
	}
	return h, nil
}

// Apply executes one operation on the implementation and checks the
// resulting transition refines the spec.
func (h *Harness) Apply(op TraceOp) error {
	var ev sm.Event
	switch op.Kind {
	case "map":
		err := h.AS.Map(op.VA, op.Frame, op.Size, op.Flags)
		ev = EvMap(op.VA, op.Frame, op.Size, op.Flags, ClassifyError(err))
	case "unmap":
		frame, err := h.AS.Unmap(op.VA)
		ev = EvUnmap(op.VA, frame, ClassifyError(err))
	case "resolve":
		m, ok := h.AS.Resolve(op.VA)
		ev = EvResolve(op.VA, m, ok)
	default:
		return fmt.Errorf("pt: unknown trace op %q", op.Kind)
	}
	abs, err := Interpret(h.Mem, h.AS.Root())
	if err != nil {
		return fmt.Errorf("pt: interpretation failed after %s: %w", op.Kind, err)
	}
	return h.checker.Step(ev, abs)
}

// Steps returns the number of checked operations.
func (h *Harness) Steps() int { return h.checker.Steps() }

// GenTrace produces a randomized workload biased toward interesting
// interleavings: repeated maps/unmaps over a small set of pages (so
// collisions and directory reuse occur), occasional huge pages,
// occasional misaligned or non-canonical probes.
func GenTrace(r *rand.Rand, n int) []TraceOp {
	// A handful of hot pages plus a cold tail; two PML4 regions so
	// directory allocation and GC both trigger.
	regions := []uint64{0x0000_0000_4000_0000, 0x0000_7f00_0000_0000}
	vaPool := make([]mmu.VAddr, 0, 24)
	for _, base := range regions {
		for i := 0; i < 10; i++ {
			vaPool = append(vaPool, mmu.VAddr(base+uint64(i)*mmu.L1PageSize))
		}
		// Huge-page candidates.
		vaPool = append(vaPool, mmu.VAddr(base+0x200000), mmu.VAddr(base+0x400000))
	}
	ops := make([]TraceOp, 0, n)
	for i := 0; i < n; i++ {
		va := vaPool[r.Intn(len(vaPool))]
		switch k := r.Intn(10); {
		case k < 4: // map 4K
			ops = append(ops, TraceOp{
				Kind:  "map",
				VA:    va.PageBase(mmu.L1PageSize),
				Frame: mem.PAddr(0x100000 + uint64(r.Intn(64))*mmu.L1PageSize),
				Size:  mmu.L1PageSize,
				Flags: mmu.Flags{Writable: r.Intn(2) == 0, User: r.Intn(2) == 0, NoExec: r.Intn(4) == 0},
			})
		case k < 5: // map 2M
			ops = append(ops, TraceOp{
				Kind:  "map",
				VA:    va.PageBase(mmu.L2PageSize),
				Frame: mem.PAddr(0x40000000 + uint64(r.Intn(8))*mmu.L2PageSize),
				Size:  mmu.L2PageSize,
				Flags: mmu.Flags{Writable: true},
			})
		case k < 8: // unmap
			ops = append(ops, TraceOp{Kind: "unmap", VA: va.PageBase(mmu.L1PageSize)})
		case k < 9: // resolve
			ops = append(ops, TraceOp{Kind: "resolve", VA: va + mmu.VAddr(r.Intn(mmu.L1PageSize))})
		default: // adversarial probes
			switch r.Intn(3) {
			case 0: // misaligned map
				ops = append(ops, TraceOp{Kind: "map", VA: va + 0x10,
					Frame: 0x100000, Size: mmu.L1PageSize})
			case 1: // non-canonical
				ops = append(ops, TraceOp{Kind: "unmap", VA: 0x8000_0000_0000})
			default: // bad size
				ops = append(ops, TraceOp{Kind: "map", VA: va.PageBase(mmu.L1PageSize),
					Frame: 0x100000, Size: 8192})
			}
		}
	}
	return ops
}

// RunRandomTrace builds a fresh address space of the given variant,
// applies a generated trace under the refinement checker, and returns
// the first violation.
func RunRandomTrace(r *rand.Rand, verified bool, n int) error {
	pm := mem.New(256 << 20)
	src := NewSimpleFrameSource(pm, 0x1000, 64<<20)
	var as AddressSpace
	var err error
	if verified {
		v, e := NewVerified(pm, src, nil)
		if e == nil {
			v.EnableGhostChecks(true)
		}
		as, err = v, e
	} else {
		as, err = NewUnverified(pm, src, nil)
	}
	if err != nil {
		return err
	}
	h, err := NewHarness(as, pm)
	if err != nil {
		return err
	}
	for i, op := range GenTrace(r, n) {
		if err := h.Apply(op); err != nil {
			return fmt.Errorf("op %d (%+v): %w", i, op, err)
		}
	}
	return nil
}

// CheckEquivalence runs the same trace against both variants and
// requires identical outcomes and final abstractions — the baseline is
// the same function, just unproven.
func CheckEquivalence(r *rand.Rand, n int) error {
	pmV := mem.New(256 << 20)
	pmU := mem.New(256 << 20)
	v, err := NewVerified(pmV, NewSimpleFrameSource(pmV, 0x1000, 64<<20), nil)
	if err != nil {
		return err
	}
	u, err := NewUnverified(pmU, NewSimpleFrameSource(pmU, 0x1000, 64<<20), nil)
	if err != nil {
		return err
	}
	for i, op := range GenTrace(r, n) {
		switch op.Kind {
		case "map":
			ev := ClassifyError(v.Map(op.VA, op.Frame, op.Size, op.Flags))
			eu := ClassifyError(u.Map(op.VA, op.Frame, op.Size, op.Flags))
			if ev != eu {
				return fmt.Errorf("op %d map diverged: verified=%s unverified=%s", i, ev, eu)
			}
		case "unmap":
			fv, ev := v.Unmap(op.VA)
			fu, eu := u.Unmap(op.VA)
			if ClassifyError(ev) != ClassifyError(eu) || fv != fu {
				return fmt.Errorf("op %d unmap diverged: (%v,%v) vs (%v,%v)", i, fv, ev, fu, eu)
			}
		case "resolve":
			mv, okv := v.Resolve(op.VA)
			mu, oku := u.Resolve(op.VA)
			if okv != oku || mv != mu {
				return fmt.Errorf("op %d resolve diverged: (%v,%t) vs (%v,%t)", i, mv, okv, mu, oku)
			}
		}
	}
	av, err := Interpret(pmV, v.Root())
	if err != nil {
		return err
	}
	au, err := Interpret(pmU, u.Root())
	if err != nil {
		return err
	}
	if !av.Equal(au) {
		return fmt.Errorf("final abstractions diverged: %d vs %d mappings", len(av), len(au))
	}
	return nil
}
