package pt

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
)

// Unverified is the baseline page-table implementation, written the way
// the original (unverified) NrOS code is: a single recursive descent per
// operation with inline bookkeeping, no proof-oriented phase structure
// and no ghost state beyond what freeing empty directories requires.
//
// It is semantically equivalent to Verified — the equivalence VC in
// pt_obligations.go checks both against the same randomized traces — and
// exists as the comparison subject for Figures 1b and 1c.
type Unverified struct {
	m      *mem.PhysMem
	frames FrameSource
	root   mem.PAddr
	inval  InvalidateFunc
	live   map[mem.PAddr]int // directory frame -> present entries
	mapped int
}

// NewUnverified creates an empty baseline address space.
func NewUnverified(m *mem.PhysMem, frames FrameSource, inval InvalidateFunc) (*Unverified, error) {
	root, err := frames.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("%w: root: %v", ErrOutOfMemory, err)
	}
	if inval == nil {
		inval = func(mmu.VAddr) {}
	}
	return &Unverified{m: m, frames: frames, root: root, inval: inval, live: make(map[mem.PAddr]int)}, nil
}

// Root returns the PML4 frame.
func (u *Unverified) Root() mem.PAddr { return u.root }

// Mem exposes the backing physical memory.
func (u *Unverified) Mem() *mem.PhysMem { return u.m }

// MappedPages returns the number of live leaf mappings.
func (u *Unverified) MappedPages() int { return u.mapped }

// Map implements AddressSpace.
func (u *Unverified) Map(va mmu.VAddr, frame mem.PAddr, size uint64, flags mmu.Flags) error {
	if err := checkArgs(va, frame, size); err != nil {
		return err
	}
	target := leafLevel(size)
	table := u.root
	for level := mmu.Levels; level > target; level-- {
		slot := mmu.EntryAddr(table, va, level)
		raw, err := u.m.Read64(slot)
		if err != nil {
			return err
		}
		e := mmu.Entry{Raw: raw, Level: level}
		if e.Present() && e.IsLeaf() {
			return fmt.Errorf("%w: huge page at level %d covers %v", ErrHugeConflict, level, va)
		}
		if !e.Present() {
			sub, err := u.frames.AllocFrame()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrOutOfMemory, err)
			}
			if err := u.m.Write64(slot, mmu.MakeTable(level, sub).Raw); err != nil {
				return err
			}
			u.live[table]++
			table = sub
			continue
		}
		table = e.Addr()
	}
	slot := mmu.EntryAddr(table, va, target)
	raw, err := u.m.Read64(slot)
	if err != nil {
		return err
	}
	if (mmu.Entry{Raw: raw, Level: target}).Present() {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, va)
	}
	if err := u.m.Write64(slot, mmu.MakeLeaf(target, frame, flags).Raw); err != nil {
		return err
	}
	u.live[table]++
	u.mapped++
	return nil
}

// Unmap implements AddressSpace.
func (u *Unverified) Unmap(va mmu.VAddr) (mem.PAddr, error) {
	if !va.IsCanonical() {
		return 0, fmt.Errorf("%w: %v", ErrNonCanonical, va)
	}
	type step struct {
		table mem.PAddr
		level int
	}
	var path []step
	table := u.root
	for level := mmu.Levels; level >= 1; level-- {
		path = append(path, step{table, level})
		slot := mmu.EntryAddr(table, va, level)
		raw, err := u.m.Read64(slot)
		if err != nil {
			return 0, err
		}
		e := mmu.Entry{Raw: raw, Level: level}
		if !e.Present() {
			return 0, fmt.Errorf("%w: %v", ErrNotMapped, va)
		}
		if e.IsLeaf() {
			if va.PageOffset(mmu.PageSizeAtLevel(level)) != 0 {
				return 0, fmt.Errorf("%w: %v is interior", ErrNotMapped, va)
			}
			if err := u.m.Write64(slot, 0); err != nil {
				return 0, err
			}
			u.live[table]--
			u.mapped--
			u.inval(va)
			// Free empty directories bottom-up.
			for i := len(path) - 1; i >= 1; i-- {
				if u.live[path[i].table] > 0 {
					break
				}
				parent := path[i-1]
				if err := u.m.Write64(mmu.EntryAddr(parent.table, va, parent.level), 0); err != nil {
					return 0, err
				}
				u.live[parent.table]--
				delete(u.live, path[i].table)
				if err := u.frames.FreeFrame(path[i].table); err != nil {
					return 0, err
				}
			}
			return e.Addr(), nil
		}
		table = e.Addr()
	}
	return 0, fmt.Errorf("%w: %v", ErrNotMapped, va)
}

// Resolve implements AddressSpace.
func (u *Unverified) Resolve(va mmu.VAddr) (Mapping, bool) {
	if !va.IsCanonical() {
		return Mapping{}, false
	}
	table := u.root
	for level := mmu.Levels; level >= 1; level-- {
		raw, err := u.m.Read64(mmu.EntryAddr(table, va, level))
		if err != nil {
			return Mapping{}, false
		}
		e := mmu.Entry{Raw: raw, Level: level}
		if !e.Present() {
			return Mapping{}, false
		}
		if e.IsLeaf() {
			return Mapping{Frame: e.Addr(), PageSize: mmu.PageSizeAtLevel(level), Flags: e.LeafFlags()}, true
		}
		table = e.Addr()
	}
	return Mapping{}, false
}
