// Package usr is the user-space runtime of the simulated OS: the §3
// "core standard library features like those in glibc and pthreads" —
// futex-backed synchronization (the paper's explicit example: "we might
// expose futexes from the kernel and then verify a userspace mutex
// implementation on top"), a user-level thread scheduler, and a heap
// allocator. NrOS provides exactly these in user space (§4.1).
package usr

import (
	"sync"
	"sync/atomic"
)

// Futex is the kernel facility user-space synchronization builds on:
// wait-if-still-equal and wake-n, keyed by the address of a 32-bit
// word. internal/sys exposes it as a syscall; LocalFutex implements it
// for a single simulated process.
type Futex interface {
	// Wait blocks the caller while *addr == expected (the comparison
	// and sleep are atomic with respect to Wake, eliminating the lost
	// wakeup window).
	Wait(addr *atomic.Uint32, expected uint32)
	// Wake wakes up to n waiters on addr, returning the number woken.
	Wake(addr *atomic.Uint32, n int) int
}

// LocalFutex is a process-local futex implementation: a wait-queue
// table keyed by word address, with the value check performed under
// the table lock — the same protocol the kernel implements.
type LocalFutex struct {
	mu     sync.Mutex
	queues map[*atomic.Uint32][]chan struct{}
}

// NewLocalFutex returns an empty futex table.
func NewLocalFutex() *LocalFutex {
	return &LocalFutex{queues: make(map[*atomic.Uint32][]chan struct{})}
}

// Wait implements Futex.
func (f *LocalFutex) Wait(addr *atomic.Uint32, expected uint32) {
	f.mu.Lock()
	if addr.Load() != expected {
		// Value already changed: return immediately (EAGAIN).
		f.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	f.queues[addr] = append(f.queues[addr], ch)
	f.mu.Unlock()
	<-ch
}

// Wake implements Futex.
func (f *LocalFutex) Wake(addr *atomic.Uint32, n int) int {
	f.mu.Lock()
	q := f.queues[addr]
	woken := 0
	for woken < n && len(q) > 0 {
		close(q[0])
		q = q[1:]
		woken++
	}
	if len(q) == 0 {
		delete(f.queues, addr)
	} else {
		f.queues[addr] = q
	}
	f.mu.Unlock()
	return woken
}

// Waiters returns the number of threads parked on addr (tests only).
func (f *LocalFutex) Waiters(addr *atomic.Uint32) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queues[addr])
}
