package usr

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: heap alignment guarantees, trylock
// never blocks nor lies, and green-thread spawn-from-thread ordering.
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "usr", Name: "heap-alignment", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				h, err := NewHeap(1 << 16)
				if err != nil {
					return err
				}
				for i := 0; i < 500; i++ {
					p, err := h.Alloc(1 + r.Intn(300))
					if err != nil {
						break
					}
					if p%16 != 0 {
						return fmt.Errorf("allocation at %#x not 16-byte aligned", p)
					}
				}
				return h.CheckInvariant()
			}},
		verifier.Obligation{Module: "usr", Name: "trylock-accurate", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := NewLocalFutex()
				m := NewMutex(f)
				for i := 0; i < 500; i++ {
					if !m.TryLock() {
						return fmt.Errorf("iter %d: TryLock on free mutex failed", i)
					}
					if m.TryLock() {
						return fmt.Errorf("iter %d: TryLock on held mutex succeeded", i)
					}
					m.Unlock()
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "uthread-spawn-from-thread", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Threads spawned from running threads join the same
				// round-robin and all complete; depth-first chains of
				// spawns terminate.
				s := NewUScheduler()
				const depth = 20
				ran := make([]bool, depth)
				var spawn func(t *UThread, d int)
				spawn = func(t *UThread, d int) {
					ran[d] = true
					if d+1 < depth {
						child := t.Spawn(func(c *UThread) { spawn(c, d+1) })
						t.Join(child)
					}
				}
				s.Spawn(func(t *UThread) { spawn(t, 0) })
				if err := s.Run(); err != nil {
					return err
				}
				for d, ok := range ran {
					if !ok {
						return fmt.Errorf("depth %d never ran", d)
					}
				}
				return nil
			}},
	)
}
