package usr

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of user-runtime VCs:
// futex lost-wakeup freedom, mutex fairness-of-progress, green-thread
// join correctness, heap payload integrity under churn, and semaphore
// conservation.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "usr", Name: "futex-no-lost-wakeups", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// The classic race: waiter checks the word, sleeper
				// parks; waker flips the word then wakes. With the
				// check-and-enqueue atomic, no schedule loses the wakeup.
				for trial := 0; trial < 50; trial++ {
					f := NewLocalFutex()
					var word atomic.Uint32
					done := make(chan struct{})
					go func() {
						f.Wait(&word, 0) // returns immediately if word != 0
						close(done)
					}()
					// Flip then wake until the waiter is gone.
					word.Store(1)
					for {
						select {
						case <-done:
							goto next
						default:
							f.Wake(&word, 1)
							runtime.Gosched()
						}
					}
				next:
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "mutex-progress-all-threads", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Every contender completes its critical sections — no
				// thread starves outright under the futex protocol.
				f := NewLocalFutex()
				m := NewMutex(f)
				const threads, iters = 6, 300
				var completed [threads]atomic.Int32
				var wg sync.WaitGroup
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							m.Lock()
							completed[t].Add(1)
							m.Unlock()
						}
					}(t)
				}
				wg.Wait()
				for t := 0; t < threads; t++ {
					if completed[t].Load() != iters {
						return fmt.Errorf("thread %d completed %d of %d", t, completed[t].Load(), iters)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "uthread-join-sees-completion", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Joins always observe the target's writes — join is a
				// synchronization point.
				s := NewUScheduler()
				results := make([]int, 8)
				var workers []*UThread
				for i := 0; i < 8; i++ {
					i := i
					workers = append(workers, s.Spawn(func(t *UThread) {
						for y := 0; y < 1+r.Intn(3); y++ {
							t.Yield()
						}
						results[i] = i * i
					}))
				}
				ok := true
				s.Spawn(func(t *UThread) {
					for i, w := range workers {
						t.Join(w)
						if results[i] != i*i {
							ok = false
						}
					}
				})
				if err := s.Run(); err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("join observed incomplete worker state")
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "heap-payload-integrity", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Every live block's bytes survive arbitrary alloc/free
				// churn around it (no metadata scribbling into payloads).
				h, err := NewHeap(1 << 16)
				if err != nil {
					return err
				}
				type rec struct {
					ptr uint64
					pat []byte
				}
				var live []rec
				for i := 0; i < 1500; i++ {
					if r.Intn(2) == 0 || len(live) == 0 {
						n := 1 + r.Intn(400)
						p, err := h.Alloc(n)
						if err != nil {
							continue
						}
						pat := make([]byte, n)
						r.Read(pat)
						if err := h.Write(p, pat); err != nil {
							return err
						}
						live = append(live, rec{p, pat})
					} else {
						j := r.Intn(len(live))
						got := make([]byte, len(live[j].pat))
						if err := h.Read(live[j].ptr, got); err != nil {
							return err
						}
						for b := range got {
							if got[b] != live[j].pat[b] {
								return fmt.Errorf("block %#x byte %d corrupted", live[j].ptr, b)
							}
						}
						if err := h.Free(live[j].ptr); err != nil {
							return err
						}
						live = append(live[:j], live[j+1:]...)
					}
				}
				return h.CheckInvariant()
			}},
		verifier.Obligation{Module: "usr", Name: "semaphore-conservation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// Tokens are conserved: after equal acquires and
				// releases from many threads, the count returns to the
				// initial value.
				f := NewLocalFutex()
				initial := uint32(1 + r.Intn(5))
				s := NewSemaphore(f, initial)
				var wg sync.WaitGroup
				for t := 0; t < 8; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 250; i++ {
							s.Acquire()
							s.Release()
						}
					}()
				}
				wg.Wait()
				if s.Value() != initial {
					return fmt.Errorf("count = %d, want %d", s.Value(), initial)
				}
				return nil
			}},
	)
}
