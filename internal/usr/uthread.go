package usr

import (
	"errors"
	"fmt"
	"sync"
)

// UScheduler is the user-level thread scheduler (NrOS provides one in
// user space, §4.1): cooperative green threads multiplexed onto the
// caller of Run. Threads yield explicitly (or implicitly in Park), and
// the scheduler round-robins runnable threads until all have finished.
//
// Implementation note: each green thread is backed by a goroutine, but
// exactly one runs at a time — the scheduler hands a single execution
// token around, which models a user-level scheduler faithfully
// (run-until-yield, explicit context switch points).
type UScheduler struct {
	mu      sync.Mutex
	ready   []*UThread
	all     map[int]*UThread
	nextID  int
	running bool
}

// UThread is one green thread.
type UThread struct {
	ID   int
	s    *UScheduler
	wake chan struct{}
	// sliceDone is closed by the thread when it relinquishes the CPU;
	// the scheduler creates a fresh one before each dispatch.
	sliceDone chan struct{}
	done      bool
	// parked marks a thread waiting on Park (absent from ready queue).
	parked bool
	// joiners are threads parked in Join on this thread.
	joiners []*UThread
}

// ErrSchedulerRunning reports a nested Run call.
var ErrSchedulerRunning = errors.New("usr: scheduler already running")

// NewUScheduler returns an empty scheduler.
func NewUScheduler() *UScheduler {
	return &UScheduler{all: make(map[int]*UThread)}
}

// Spawn creates a green thread executing fn. fn receives its own
// UThread for yielding, parking and spawning.
func (s *UScheduler) Spawn(fn func(t *UThread)) *UThread {
	s.mu.Lock()
	t := &UThread{ID: s.nextID, s: s, wake: make(chan struct{}, 1)}
	s.nextID++
	s.all[t.ID] = t
	s.ready = append(s.ready, t)
	s.mu.Unlock()

	go func() {
		<-t.wake // wait until first scheduled
		fn(t)
		s.exit(t)
	}()
	return t
}

// Run drives the scheduler until every thread has finished. It must be
// called from exactly one goroutine.
func (s *UScheduler) Run() error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return ErrSchedulerRunning
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()

	for {
		s.mu.Lock()
		if len(s.ready) == 0 {
			// Either done, or deadlocked with parked threads.
			var parked int
			for _, t := range s.all {
				if !t.done {
					parked++
				}
			}
			s.mu.Unlock()
			if parked > 0 {
				return fmt.Errorf("usr: deadlock: %d threads parked with empty run queue", parked)
			}
			return nil
		}
		t := s.ready[0]
		s.ready = s.ready[1:]
		s.mu.Unlock()

		// Hand the token to t, wait for it to yield/park/exit. The
		// rendezvous channel must exist before the thread runs.
		slice := make(chan struct{})
		t.sliceDone = slice
		t.wake <- struct{}{}
		<-slice
	}
}

// Yield puts the thread at the back of the run queue and switches to
// the scheduler.
func (t *UThread) Yield() {
	s := t.s
	s.mu.Lock()
	s.ready = append(s.ready, t)
	s.mu.Unlock()
	t.switchOut()
	<-t.wake
}

// Park blocks the thread until Unpark.
func (t *UThread) Park() {
	s := t.s
	s.mu.Lock()
	t.parked = true
	s.mu.Unlock()
	t.switchOut()
	<-t.wake
}

// Unpark makes a parked thread runnable again. Unparking a non-parked
// thread is a no-op (matching futex-style wakeups).
func (t *UThread) Unpark(target *UThread) {
	s := t.s
	s.mu.Lock()
	if target.parked && !target.done {
		target.parked = false
		s.ready = append(s.ready, target)
	}
	s.mu.Unlock()
}

// Join parks until target finishes.
func (t *UThread) Join(target *UThread) {
	s := t.s
	s.mu.Lock()
	if target.done {
		s.mu.Unlock()
		return
	}
	target.joiners = append(target.joiners, t)
	t.parked = true
	s.mu.Unlock()
	t.switchOut()
	<-t.wake
}

// Spawn lets a running thread create a sibling.
func (t *UThread) Spawn(fn func(*UThread)) *UThread { return t.s.Spawn(fn) }

// exit marks t finished and wakes joiners.
func (s *UScheduler) exit(t *UThread) {
	s.mu.Lock()
	t.done = true
	for _, j := range t.joiners {
		j.parked = false
		s.ready = append(s.ready, j)
	}
	t.joiners = nil
	s.mu.Unlock()
	t.switchOut()
}

// switchOut signals the scheduler that this thread's slice ended. The
// sliceDone field is written only by the scheduler before waking the
// thread (ordered by the wake channel) and closed exactly once per
// slice here; writing it from the thread would race with the
// scheduler's next-slice assignment.
func (t *UThread) switchOut() {
	close(t.sliceDone)
}
