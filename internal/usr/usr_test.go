package usr

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/verifier"
)

func TestLocalFutexWaitWake(t *testing.T) {
	f := NewLocalFutex()
	var word atomic.Uint32
	word.Store(7)

	// Wait with a stale expectation returns immediately.
	f.Wait(&word, 8)

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		f.Wait(&word, 7)
	}()
	<-started
	// Wait for the waiter to park, then wake it.
	for f.Waiters(&word) == 0 {
	}
	if n := f.Wake(&word, 1); n != 1 {
		t.Fatalf("woke %d", n)
	}
	wg.Wait()
	if n := f.Wake(&word, 1); n != 0 {
		t.Fatalf("phantom wake %d", n)
	}
}

func TestMutexBasic(t *testing.T) {
	m := NewMutex(NewLocalFutex())
	m.Lock()
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	m.Unlock()
	if m.Locked() {
		t.Fatal("mutex left locked")
	}
}

func TestMutexContended(t *testing.T) {
	m := NewMutex(NewLocalFutex())
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 6000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(NewLocalFutex(), 2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("third acquire succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	s.Release()
	s.Release()
	if s.Value() != 2 {
		t.Fatalf("value = %d", s.Value())
	}
}

func TestCondSignal(t *testing.T) {
	f := NewLocalFutex()
	m := NewMutex(f)
	c := NewCond(f)
	ready := false
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Lock()
		for !ready {
			c.Wait(m)
		}
		m.Unlock()
	}()
	m.Lock()
	ready = true
	m.Unlock()
	// Signal until the waiter exits (spurious-wakeup-safe protocol
	// means we may need more than one).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
			c.Signal()
		}
	}
}

func TestHeapAllocFreeReadWrite(t *testing.T) {
	h, err := NewHeap(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("heap payload")
	if err := h.Write(p1, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := h.Read(p1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := h.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOverflowGuards(t *testing.T) {
	h, _ := NewHeap(1 << 12)
	p, _ := h.Alloc(16)
	if err := h.Write(p, make([]byte, 1000)); err == nil {
		t.Fatal("overflowing write accepted")
	}
	if err := h.Read(p, make([]byte, 1000)); err == nil {
		t.Fatal("overflowing read accepted")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if _, err := h.Alloc(1 << 20); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("huge alloc: %v", err)
	}
}

func TestHeapQuickRandomTraffic(t *testing.T) {
	prop := func(seed int64) bool {
		h, err := NewHeap(1 << 14)
		if err != nil {
			return false
		}
		live := map[uint64][]byte{}
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng>>33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < 300; i++ {
			if next(2) == 0 || len(live) == 0 {
				sz := 1 + next(200)
				p, err := h.Alloc(sz)
				if err != nil {
					continue
				}
				pat := make([]byte, sz)
				for j := range pat {
					pat[j] = byte(next(256))
				}
				if h.Write(p, pat) != nil {
					return false
				}
				live[p] = pat
			} else {
				for p, pat := range live {
					got := make([]byte, len(pat))
					if h.Read(p, got) != nil || !bytes.Equal(got, pat) {
						return false // another block scribbled on us
					}
					if h.Free(p) != nil {
						return false
					}
					delete(live, p)
					break
				}
			}
		}
		return h.CheckInvariant() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestUSchedulerJoin(t *testing.T) {
	s := NewUScheduler()
	var order []string
	worker := s.Spawn(func(t *UThread) {
		order = append(order, "worker-start")
		t.Yield()
		order = append(order, "worker-end")
	})
	s.Spawn(func(t *UThread) {
		order = append(order, "joiner-start")
		t.Join(worker)
		order = append(order, "joined")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"worker-start", "joiner-start", "worker-end", "joined"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestUSchedulerJoinFinished(t *testing.T) {
	s := NewUScheduler()
	worker := s.Spawn(func(t *UThread) {})
	s.Spawn(func(t *UThread) {
		t.Yield() // let worker finish first
		t.Join(worker)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUSchedulerParkUnpark(t *testing.T) {
	s := NewUScheduler()
	var got []int
	var sleeper *UThread
	sleeper = s.Spawn(func(t *UThread) {
		got = append(got, 1)
		t.Park()
		got = append(got, 3)
	})
	s.Spawn(func(t *UThread) {
		got = append(got, 2)
		t.Unpark(sleeper)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
}

func TestUSchedulerSpawnFromThread(t *testing.T) {
	s := NewUScheduler()
	ran := false
	s.Spawn(func(t *UThread) {
		child := t.Spawn(func(*UThread) { ran = true })
		t.Join(child)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("child never ran")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 53})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
