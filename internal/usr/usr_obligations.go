package usr

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the user-space runtime verification
// conditions: mutual exclusion of the futex mutex under contention,
// semaphore counting, condition-variable wakeups, heap invariants and
// conservation, and green-thread scheduling order.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "usr", Name: "futex-mutex-mutual-exclusion", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := NewLocalFutex()
				m := NewMutex(f)
				var inside atomic.Int32
				var violations atomic.Int32
				counter := 0
				var wg sync.WaitGroup
				for t := 0; t < 8; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 500; i++ {
							m.Lock()
							if inside.Add(1) != 1 {
								violations.Add(1)
							}
							counter++
							inside.Add(-1)
							m.Unlock()
						}
					}()
				}
				wg.Wait()
				if violations.Load() != 0 {
					return fmt.Errorf("%d mutual-exclusion violations", violations.Load())
				}
				if counter != 8*500 {
					return fmt.Errorf("counter = %d, want %d (lost updates)", counter, 8*500)
				}
				if m.Locked() {
					return fmt.Errorf("mutex left locked")
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "semaphore-bounds-concurrency", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := NewLocalFutex()
				s := NewSemaphore(f, 3)
				var inside, maxSeen atomic.Int32
				var wg sync.WaitGroup
				for t := 0; t < 10; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 200; i++ {
							s.Acquire()
							n := inside.Add(1)
							for {
								m := maxSeen.Load()
								if n <= m || maxSeen.CompareAndSwap(m, n) {
									break
								}
							}
							inside.Add(-1)
							s.Release()
						}
					}()
				}
				wg.Wait()
				if maxSeen.Load() > 3 {
					return fmt.Errorf("semaphore admitted %d concurrent holders", maxSeen.Load())
				}
				if s.Value() != 3 {
					return fmt.Errorf("final count = %d", s.Value())
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "condvar-wakes-waiters", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := NewLocalFutex()
				m := NewMutex(f)
				c := NewCond(f)
				queue := 0
				var consumed atomic.Int32
				var wg sync.WaitGroup
				const items = 100
				for t := 0; t < 4; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							m.Lock()
							for queue == 0 && consumed.Load() < items {
								c.Wait(m)
							}
							if consumed.Load() >= items && queue == 0 {
								m.Unlock()
								return
							}
							queue--
							consumed.Add(1)
							m.Unlock()
						}
					}()
				}
				for i := 0; i < items; i++ {
					m.Lock()
					queue++
					m.Unlock()
					c.Signal()
				}
				// Drain: broadcast until all consumers exit.
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				for {
					select {
					case <-done:
						if consumed.Load() != items {
							return fmt.Errorf("consumed %d of %d", consumed.Load(), items)
						}
						return nil
					default:
						c.Broadcast()
					}
				}
			}},
		verifier.Obligation{Module: "usr", Name: "heap-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				h, err := NewHeap(1 << 16)
				if err != nil {
					return err
				}
				var live []uint64
				for i := 0; i < 2000; i++ {
					if r.Intn(2) == 0 || len(live) == 0 {
						if p, err := h.Alloc(1 + r.Intn(500)); err == nil {
							live = append(live, p)
						}
					} else {
						j := r.Intn(len(live))
						if err := h.Free(live[j]); err != nil {
							return err
						}
						live = append(live[:j], live[j+1:]...)
					}
					if i%100 == 0 {
						if err := h.CheckInvariant(); err != nil {
							return fmt.Errorf("iter %d: %w", i, err)
						}
					}
				}
				return h.CheckInvariant()
			}},
		verifier.Obligation{Module: "usr", Name: "heap-conservation-and-reuse", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				h, err := NewHeap(1 << 14)
				if err != nil {
					return err
				}
				var ptrs []uint64
				for {
					p, err := h.Alloc(64)
					if err != nil {
						break
					}
					ptrs = append(ptrs, p)
				}
				if len(ptrs) == 0 {
					return fmt.Errorf("no allocations fit")
				}
				for _, p := range ptrs {
					if err := h.Free(p); err != nil {
						return err
					}
				}
				alloc, blocks := h.Stats()
				if alloc != 0 || blocks != 0 {
					return fmt.Errorf("leak: %d bytes, %d blocks", alloc, blocks)
				}
				// Full coalescing: one max-size allocation must now fit.
				if _, err := h.Alloc((1 << 14) - 64); err != nil {
					return fmt.Errorf("arena did not coalesce: %v", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "heap-rejects-double-free", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				h, err := NewHeap(1 << 12)
				if err != nil {
					return err
				}
				p, err := h.Alloc(32)
				if err != nil {
					return err
				}
				if err := h.Free(p); err != nil {
					return err
				}
				if err := h.Free(p); err == nil {
					return fmt.Errorf("double free accepted")
				}
				if err := h.Free(0); err == nil {
					return fmt.Errorf("null free accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "uthreads-cooperative-order", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s := NewUScheduler()
				var trace []int
				for i := 0; i < 3; i++ {
					i := i
					s.Spawn(func(t *UThread) {
						trace = append(trace, i)
						t.Yield()
						trace = append(trace, i+10)
					})
				}
				if err := s.Run(); err != nil {
					return err
				}
				want := []int{0, 1, 2, 10, 11, 12}
				if len(trace) != len(want) {
					return fmt.Errorf("trace = %v", trace)
				}
				for i := range want {
					if trace[i] != want[i] {
						return fmt.Errorf("round-robin order broken: %v", trace)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "usr", Name: "uthreads-detect-deadlock", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s := NewUScheduler()
				s.Spawn(func(t *UThread) { t.Park() }) // never unparked
				if err := s.Run(); err == nil {
					return fmt.Errorf("deadlock not detected")
				}
				return nil
			}},
	)
}
