package usr

import (
	"errors"
	"fmt"
)

// Heap is the user-space memory allocator (NrOS ships one in its user
// runtime, §4.1): a first-fit free-list allocator with headers and
// footers inside a flat arena, with coalescing on free. The arena
// models the process's heap segment; in the full system it is backed
// by anonymous memory mapped through the mmap syscall.
//
// Layout of a block: [header u64][payload ...][footer u64], where
// header == footer == size<<1 | used. Sizes include the metadata and
// are 16-byte aligned.
type Heap struct {
	arena []byte
	// freeHead is the offset of the first free block, or 0 (offset 0
	// is never a block start: the arena begins with a sentinel word).
	freeHead uint64

	allocated uint64
	blocks    int
}

// Allocation constants.
const (
	heapAlign    = 16
	headerSize   = 8
	minBlock     = 2*headerSize + heapAlign
	heapSentinel = 8 // bytes reserved at the arena start
)

// Allocator errors.
var (
	ErrHeapFull    = errors.New("usr: out of heap memory")
	ErrHeapCorrupt = errors.New("usr: heap corruption detected")
	ErrBadPointer  = errors.New("usr: free of invalid pointer")
)

// NewHeap creates a heap over an arena of the given size.
func NewHeap(size int) (*Heap, error) {
	if size < 4*minBlock {
		return nil, fmt.Errorf("usr: arena of %d bytes too small", size)
	}
	size &^= heapAlign - 1
	h := &Heap{arena: make([]byte, size)}
	// One big free block after the sentinel.
	blockSize := uint64(size) - heapSentinel
	h.writeBlock(heapSentinel, blockSize, false)
	h.setNextFree(heapSentinel, 0)
	h.freeHead = heapSentinel
	return h, nil
}

// word helpers: blocks store size<<1|used in their first and last 8
// bytes; free blocks additionally store the next-free offset in the
// first payload word.
func (h *Heap) readWord(off uint64) uint64 {
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(h.arena[off+uint64(i)])
	}
	return v
}

func (h *Heap) writeWord(off, v uint64) {
	for i := 0; i < 8; i++ {
		h.arena[off+uint64(i)] = byte(v >> (8 * i))
	}
}

func (h *Heap) writeBlock(off, size uint64, used bool) {
	tag := size << 1
	if used {
		tag |= 1
	}
	h.writeWord(off, tag)
	h.writeWord(off+size-headerSize, tag)
}

func (h *Heap) blockSize(off uint64) uint64 { return h.readWord(off) >> 1 }
func (h *Heap) blockUsed(off uint64) bool   { return h.readWord(off)&1 == 1 }

func (h *Heap) nextFree(off uint64) uint64   { return h.readWord(off + headerSize) }
func (h *Heap) setNextFree(off, next uint64) { h.writeWord(off+headerSize, next) }

// Alloc returns the arena offset of a payload of at least n bytes.
func (h *Heap) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("usr: alloc of %d bytes", n)
	}
	need := uint64(n) + 2*headerSize
	need = (need + heapAlign - 1) &^ (heapAlign - 1)
	if need < minBlock {
		need = minBlock
	}

	prev := uint64(0)
	cur := h.freeHead
	for cur != 0 {
		size := h.blockSize(cur)
		if size >= need {
			next := h.nextFree(cur)
			if size-need >= minBlock {
				// Split: tail remains free.
				h.writeBlock(cur+need, size-need, false)
				h.setNextFree(cur+need, next)
				next = cur + need
				size = need
			}
			if prev == 0 {
				h.freeHead = next
			} else {
				h.setNextFree(prev, next)
			}
			h.writeBlock(cur, size, true)
			h.allocated += size
			h.blocks++
			return cur + headerSize, nil
		}
		prev = cur
		cur = h.nextFree(cur)
	}
	return 0, fmt.Errorf("%w: %d bytes requested", ErrHeapFull, n)
}

// Free releases a payload offset returned by Alloc, coalescing with
// free neighbours.
func (h *Heap) Free(ptr uint64) error {
	if ptr < heapSentinel+headerSize || ptr >= uint64(len(h.arena)) {
		return fmt.Errorf("%w: %#x", ErrBadPointer, ptr)
	}
	off := ptr - headerSize
	if !h.blockUsed(off) {
		return fmt.Errorf("%w: double free at %#x", ErrBadPointer, ptr)
	}
	size := h.blockSize(off)
	if size < minBlock || off+size > uint64(len(h.arena)) {
		return fmt.Errorf("%w: header at %#x", ErrHeapCorrupt, off)
	}
	h.allocated -= size
	h.blocks--

	// Coalesce with the following block.
	next := off + size
	if next < uint64(len(h.arena)) && !h.blockUsed(next) {
		h.unlinkFree(next)
		size += h.blockSize(next)
	}
	// Coalesce with the preceding block via its footer.
	if off > heapSentinel {
		prevTag := h.readWord(off - headerSize)
		if prevTag&1 == 0 {
			prevSize := prevTag >> 1
			prevOff := off - prevSize
			h.unlinkFree(prevOff)
			off = prevOff
			size += prevSize
		}
	}
	h.writeBlock(off, size, false)
	h.setNextFree(off, h.freeHead)
	h.freeHead = off
	return nil
}

// unlinkFree removes a block from the free list.
func (h *Heap) unlinkFree(off uint64) {
	if h.freeHead == off {
		h.freeHead = h.nextFree(off)
		return
	}
	cur := h.freeHead
	for cur != 0 {
		n := h.nextFree(cur)
		if n == off {
			h.setNextFree(cur, h.nextFree(off))
			return
		}
		cur = n
	}
}

// Write stores p at an allocated payload offset.
func (h *Heap) Write(ptr uint64, p []byte) error {
	off := ptr - headerSize
	if ptr < heapSentinel+headerSize || !h.blockUsed(off) {
		return fmt.Errorf("%w: write at %#x", ErrBadPointer, ptr)
	}
	if uint64(len(p)) > h.blockSize(off)-2*headerSize {
		return fmt.Errorf("%w: write of %d bytes overflows block", ErrBadPointer, len(p))
	}
	copy(h.arena[ptr:], p)
	return nil
}

// Read loads len(p) bytes from an allocated payload offset.
func (h *Heap) Read(ptr uint64, p []byte) error {
	off := ptr - headerSize
	if ptr < heapSentinel+headerSize || !h.blockUsed(off) {
		return fmt.Errorf("%w: read at %#x", ErrBadPointer, ptr)
	}
	if uint64(len(p)) > h.blockSize(off)-2*headerSize {
		return fmt.Errorf("%w: read of %d bytes overflows block", ErrBadPointer, len(p))
	}
	copy(p, h.arena[ptr:])
	return nil
}

// Stats reports heap occupancy.
func (h *Heap) Stats() (allocatedBytes uint64, liveBlocks int) {
	return h.allocated, h.blocks
}

// CheckInvariant walks the arena: blocks tile it exactly, headers match
// footers, free-list members are exactly the free blocks, and no two
// adjacent blocks are both free (full coalescing).
func (h *Heap) CheckInvariant() error {
	freeSet := make(map[uint64]bool)
	for cur := h.freeHead; cur != 0; cur = h.nextFree(cur) {
		if freeSet[cur] {
			return fmt.Errorf("%w: free-list cycle at %#x", ErrHeapCorrupt, cur)
		}
		freeSet[cur] = true
	}
	off := uint64(heapSentinel)
	prevFree := false
	walked := 0
	for off < uint64(len(h.arena)) {
		size := h.blockSize(off)
		if size < minBlock || off+size > uint64(len(h.arena)) {
			return fmt.Errorf("%w: block size %d at %#x", ErrHeapCorrupt, size, off)
		}
		foot := h.readWord(off + size - headerSize)
		if foot != h.readWord(off) {
			return fmt.Errorf("%w: header/footer mismatch at %#x", ErrHeapCorrupt, off)
		}
		used := h.blockUsed(off)
		if !used {
			if prevFree {
				return fmt.Errorf("%w: adjacent free blocks at %#x", ErrHeapCorrupt, off)
			}
			if !freeSet[off] {
				return fmt.Errorf("%w: free block %#x missing from free list", ErrHeapCorrupt, off)
			}
			delete(freeSet, off)
		}
		prevFree = !used
		off += size
		walked++
		if walked > len(h.arena)/minBlock+1 {
			return fmt.Errorf("%w: walk diverged", ErrHeapCorrupt)
		}
	}
	if off != uint64(len(h.arena)) {
		return fmt.Errorf("%w: blocks tile %d of %d bytes", ErrHeapCorrupt, off, len(h.arena))
	}
	if len(freeSet) != 0 {
		return fmt.Errorf("%w: free list references non-free blocks", ErrHeapCorrupt)
	}
	return nil
}
