package usr

import (
	"sync/atomic"
)

// Mutex is the futex-based user-space mutex, following Drepper's
// "Futexes are Tricky" (the paper's citation [14]) mutex variant 2:
// the word is 0 (unlocked), 1 (locked, no waiters) or 2 (locked,
// waiters possible). The fast path is a single CAS with no kernel
// involvement.
type Mutex struct {
	f    Futex
	word atomic.Uint32
}

// NewMutex creates an unlocked mutex over the given futex facility.
func NewMutex(f Futex) *Mutex { return &Mutex{f: f} }

// Lock acquires the mutex.
func (m *Mutex) Lock() {
	if m.word.CompareAndSwap(0, 1) {
		return // fast path: uncontended
	}
	for {
		// Announce contention: move 1 -> 2 (or observe it already 2).
		c := m.word.Load()
		if c != 2 {
			if c == 0 {
				if m.word.CompareAndSwap(0, 2) {
					return
				}
				continue
			}
			if !m.word.CompareAndSwap(1, 2) {
				continue
			}
		}
		m.f.Wait(&m.word, 2)
		// Retake with state 2: we cannot know whether other waiters
		// remain, so stay in the contended state.
		if m.word.CompareAndSwap(0, 2) {
			return
		}
	}
}

// TryLock acquires the mutex without blocking.
func (m *Mutex) TryLock() bool { return m.word.CompareAndSwap(0, 1) }

// Unlock releases the mutex, waking one waiter if contended.
func (m *Mutex) Unlock() {
	if m.word.Swap(0) == 2 {
		m.f.Wake(&m.word, 1)
	}
}

// Locked reports the current word (tests only).
func (m *Mutex) Locked() bool { return m.word.Load() != 0 }

// Semaphore is a counting semaphore over a futex word.
type Semaphore struct {
	f     Futex
	count atomic.Uint32
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(f Futex, initial uint32) *Semaphore {
	s := &Semaphore{f: f}
	s.count.Store(initial)
	return s
}

// Acquire decrements the count, blocking while it is zero.
func (s *Semaphore) Acquire() {
	for {
		c := s.count.Load()
		if c == 0 {
			s.f.Wait(&s.count, 0)
			continue
		}
		if s.count.CompareAndSwap(c, c-1) {
			return
		}
	}
}

// TryAcquire decrements without blocking.
func (s *Semaphore) TryAcquire() bool {
	for {
		c := s.count.Load()
		if c == 0 {
			return false
		}
		if s.count.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

// Release increments the count and wakes one waiter.
func (s *Semaphore) Release() {
	s.count.Add(1)
	s.f.Wake(&s.count, 1)
}

// Value returns the current count.
func (s *Semaphore) Value() uint32 { return s.count.Load() }

// Cond is a futex-based condition variable: the classic sequence-word
// protocol. Waiters snapshot the sequence under the mutex, release it,
// and sleep while the sequence is unchanged; signalers bump the
// sequence and wake.
type Cond struct {
	f   Futex
	seq atomic.Uint32
}

// NewCond creates a condition variable.
func NewCond(f Futex) *Cond { return &Cond{f: f} }

// Wait atomically releases m and parks until a signal, then reacquires
// m. As with pthreads, spurious wakeups are possible; callers must
// re-check their predicate in a loop.
func (c *Cond) Wait(m *Mutex) {
	snapshot := c.seq.Load()
	m.Unlock()
	c.f.Wait(&c.seq, snapshot)
	m.Lock()
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	c.seq.Add(1)
	c.f.Wake(&c.seq, 1)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	c.seq.Add(1)
	c.f.Wake(&c.seq, 1<<30)
}
