package ulib

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// Env provides ulib's obligations with processes and threads on a live
// system; internal/core implements it (ulib cannot import core).
type Env interface {
	// NewProcess spawns a fresh process and returns its Sys handle.
	NewProcess() (*sys.Sys, error)
	// NewThread returns an additional syscall handle for the same
	// process — a second thread sharing the address space.
	NewThread(of *sys.Sys) (*sys.Sys, error)
}

// RegisterObligations registers the standard-library verification
// conditions: buffered stdio must be observationally equivalent to
// direct syscalls, malloc must not alias live blocks, the C-string
// routines must agree with Go-native strings, and the process-memory
// futex mutex must provide mutual exclusion across threads.
func RegisterObligations(g *verifier.Registry, env Env) {
	registerMoreObligations(g, env)
	g.Register(
		verifier.Obligation{Module: "ulib", Name: "stdio-equals-direct-syscalls", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				// Random interleaving of buffered writes/reads/seeks on
				// one file, mirrored by direct syscalls on another; the
				// final contents must be identical.
				bf, err := rt.Open("/ulib-buffered", fs.OCreate|fs.ORdWr)
				if err != nil {
					return err
				}
				dfd, e := s.Open("/ulib-direct", fs.OCreate|fs.ORdWr)
				if e != sys.EOK {
					return errnoErr("open direct", e)
				}
				for i := 0; i < 60; i++ {
					switch r.Intn(3) {
					case 0:
						data := make([]byte, r.Intn(200))
						r.Read(data)
						if _, err := bf.Write(data); err != nil {
							return err
						}
						if _, e := s.Write(dfd, data); e != sys.EOK {
							return errnoErr("direct write", e)
						}
					case 1:
						buf1 := make([]byte, r.Intn(100))
						buf2 := make([]byte, len(buf1))
						n1, err := bf.Read(buf1)
						if err != nil {
							return err
						}
						n2, e := s.Read(dfd, buf2)
						if e != sys.EOK {
							return errnoErr("direct read", e)
						}
						if n1 != int(n2) || !bytes.Equal(buf1[:n1], buf2[:n2]) {
							return fmt.Errorf("buffered read diverged at op %d", i)
						}
					default:
						off := int64(r.Intn(100))
						p1, err := bf.Seek(off, fs.SeekSet)
						if err != nil {
							return err
						}
						p2, e := s.Seek(dfd, off, fs.SeekSet)
						if e != sys.EOK {
							return errnoErr("direct seek", e)
						}
						if p1 != int64(p2) {
							return fmt.Errorf("seek diverged: %d vs %d", p1, p2)
						}
					}
				}
				if err := bf.Close(); err != nil {
					return err
				}
				st1, e := s.Stat("/ulib-buffered")
				if e != sys.EOK {
					return errnoErr("stat", e)
				}
				st2, _ := s.Stat("/ulib-direct")
				if st1.Size != st2.Size {
					return fmt.Errorf("file sizes diverged: %d vs %d", st1.Size, st2.Size)
				}
				// Byte-for-byte comparison.
				f1, _ := s.Open("/ulib-buffered", fs.ORdOnly)
				f2, _ := s.Open("/ulib-direct", fs.ORdOnly)
				b1 := make([]byte, st1.Size)
				b2 := make([]byte, st2.Size)
				s.Read(f1, b1)
				s.Read(f2, b2)
				if !bytes.Equal(b1, b2) {
					return fmt.Errorf("file contents diverged")
				}
				return nil
			}},
		verifier.Obligation{Module: "ulib", Name: "malloc-no-aliasing", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				type rec struct {
					va   mmu.VAddr
					size uint64
					pat  byte
				}
				var live []rec
				for i := 0; i < 150; i++ {
					if r.Intn(3) > 0 || len(live) == 0 {
						size := uint64(1 + r.Intn(500))
						va, err := rt.Malloc(size)
						if err != nil {
							return err
						}
						pat := byte(r.Intn(256))
						if err := rt.Memset(va, pat, size); err != nil {
							return err
						}
						live = append(live, rec{va, size, pat})
					} else {
						j := r.Intn(len(live))
						// Verify the pattern survived every other alloc.
						buf := make([]byte, live[j].size)
						if e := s.MemRead(live[j].va, buf); e != sys.EOK {
							return errnoErr("memread", e)
						}
						for _, b := range buf {
							if b != live[j].pat {
								return fmt.Errorf("block at %#x corrupted (aliasing)", uint64(live[j].va))
							}
						}
						if err := rt.Free(live[j].va); err != nil {
							return err
						}
						live = append(live[:j], live[j+1:]...)
					}
				}
				// Double free rejected.
				va, err := rt.Malloc(16)
				if err != nil {
					return err
				}
				if err := rt.Free(va); err != nil {
					return err
				}
				if err := rt.Free(va); err == nil {
					return fmt.Errorf("double free accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "ulib", Name: "cstring-routines-agree-with-go", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				for i := 0; i < 40; i++ {
					n := r.Intn(300)
					raw := make([]byte, n)
					for j := range raw {
						raw[j] = byte(1 + r.Intn(255)) // no embedded NUL
					}
					want := string(raw)
					va, err := rt.Malloc(uint64(n + 1))
					if err != nil {
						return err
					}
					if err := rt.WriteCString(va, want); err != nil {
						return err
					}
					ln, err := rt.Strlen(va)
					if err != nil {
						return err
					}
					if ln != uint64(len(want)) {
						return fmt.Errorf("strlen = %d, want %d", ln, len(want))
					}
					got, err := rt.ReadCString(va)
					if err != nil {
						return err
					}
					if got != want {
						return fmt.Errorf("cstring round trip mismatch")
					}
					// Strcmp self-compare and against a mutated copy.
					vb, err := rt.Malloc(uint64(n + 1))
					if err != nil {
						return err
					}
					if err := rt.WriteCString(vb, want); err != nil {
						return err
					}
					if c, err := rt.Strcmp(va, vb); err != nil || c != 0 {
						return fmt.Errorf("strcmp equal strings = %d, %v", c, err)
					}
					if n > 0 {
						mut := []byte(want)
						mut[r.Intn(n)] ^= 0x01
						if err := rt.WriteCString(vb, string(mut)); err != nil {
							return err
						}
						if c, err := rt.Strcmp(va, vb); err != nil || c == 0 {
							return fmt.Errorf("strcmp differing strings = %d, %v", c, err)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "ulib", Name: "memcpy-semantics", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				for i := 0; i < 30; i++ {
					n := uint64(1 + r.Intn(3000))
					src, err := rt.Malloc(n)
					if err != nil {
						return err
					}
					dst, err := rt.Malloc(n)
					if err != nil {
						return err
					}
					data := make([]byte, n)
					r.Read(data)
					if e := s.MemWrite(src, data); e != sys.EOK {
						return errnoErr("seed", e)
					}
					if err := rt.Memcpy(dst, src, n); err != nil {
						return err
					}
					got := make([]byte, n)
					if e := s.MemRead(dst, got); e != sys.EOK {
						return errnoErr("check", e)
					}
					if !bytes.Equal(got, data) {
						return fmt.Errorf("memcpy mismatch at %d bytes", n)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "ulib", Name: "pthread-mutex-mutual-exclusion", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				m, err := rt.NewMutex()
				if err != nil {
					return err
				}
				// A shared counter word in process memory, incremented
				// non-atomically under the mutex by 4 threads.
				counter, err := rt.Calloc(4)
				if err != nil {
					return err
				}
				const threads, iters = 4, 60
				var wg sync.WaitGroup
				errs := make(chan error, threads)
				for t := 0; t < threads; t++ {
					th, err := env.NewThread(s)
					if err != nil {
						return err
					}
					trt := New(th)
					tm := &Mutex{rt: trt, Word: m.Word}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							if err := tm.Lock(); err != nil {
								errs <- err
								return
							}
							var b [4]byte
							if e := th.MemRead(counter, b[:]); e != sys.EOK {
								errs <- errnoErr("ctr read", e)
								return
							}
							v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
							v++
							nb := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
							if e := th.MemWrite(counter, nb[:]); e != sys.EOK {
								errs <- errnoErr("ctr write", e)
								return
							}
							if err := tm.Unlock(); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}()
				}
				wg.Wait()
				for t := 0; t < threads; t++ {
					if err := <-errs; err != nil {
						return err
					}
				}
				var b [4]byte
				if e := s.MemRead(counter, b[:]); e != sys.EOK {
					return errnoErr("final read", e)
				}
				got := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
				if got != threads*iters {
					return fmt.Errorf("counter = %d, want %d (lost updates => mutex broken)",
						got, threads*iters)
				}
				return nil
			}},
	)
}
