package ulib

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the third library wave: condition-variable
// producer/consumer over process memory, line-oriented stdio round
// trips, seek-relative semantics with buffered read-ahead, and calloc
// zeroing through block reuse.
func registerMoreObligations(g *verifier.Registry, env Env) {
	g.Register(
		verifier.Obligation{Module: "ulib", Name: "condvar-producer-consumer", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				m, err := rt.NewMutex()
				if err != nil {
					return err
				}
				cv, err := rt.NewCond()
				if err != nil {
					return err
				}
				slot, err := rt.Calloc(4) // shared "queue depth" word
				if err != nil {
					return err
				}
				readWord := func(h *sys.Sys) (uint32, error) {
					var b [4]byte
					if e := h.MemRead(slot, b[:]); e != sys.EOK {
						return 0, errnoErr("read slot", e)
					}
					return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
				}
				writeWord := func(h *sys.Sys, v uint32) error {
					b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
					if e := h.MemWrite(slot, b[:]); e != sys.EOK {
						return errnoErr("write slot", e)
					}
					return nil
				}
				const items = 30
				consumed := 0
				done := make(chan error, 1)
				th, err := env.NewThread(s)
				if err != nil {
					return err
				}
				trt := New(th)
				tm, err := trt.AdoptMutex(m.Word)
				if err != nil {
					return err
				}
				tcv := &Cond{rt: trt, Seq: cv.Seq}
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for consumed < items {
						if err := tm.Lock(); err != nil {
							done <- err
							return
						}
						for {
							v, err := readWord(th)
							if err != nil {
								done <- err
								return
							}
							if v > 0 {
								if err := writeWord(th, v-1); err != nil {
									done <- err
									return
								}
								consumed++
								break
							}
							if err := tcv.Wait(tm); err != nil {
								done <- err
								return
							}
						}
						if err := tm.Unlock(); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}()
				for i := 0; i < items; i++ {
					if err := m.Lock(); err != nil {
						return err
					}
					v, err := readWord(s)
					if err != nil {
						return err
					}
					if err := writeWord(s, v+1); err != nil {
						return err
					}
					if err := m.Unlock(); err != nil {
						return err
					}
					if err := cv.Signal(); err != nil {
						return err
					}
				}
				// Keep signalling until the consumer drains (spurious-
				// wakeup-safe protocol may need extra nudges).
				for {
					select {
					case err := <-done:
						if err != nil {
							return err
						}
						if consumed != items {
							return fmt.Errorf("consumed %d of %d", consumed, items)
						}
						wg.Wait()
						return nil
					default:
						if err := cv.Broadcast(); err != nil {
							return err
						}
					}
				}
			}},
		verifier.Obligation{Module: "ulib", Name: "stdio-line-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				f, err := rt.Open("/lines", fs.OCreate|fs.ORdWr)
				if err != nil {
					return err
				}
				var want []string
				for i := 0; i < 40; i++ {
					n := r.Intn(120)
					line := make([]byte, n)
					for j := range line {
						line[j] = byte('a' + r.Intn(26))
					}
					want = append(want, string(line))
					if _, err := f.Printf("%s\n", line); err != nil {
						return err
					}
				}
				if _, err := f.Seek(0, fs.SeekSet); err != nil {
					return err
				}
				for i, w := range want {
					got, err := f.ReadLine()
					if err != nil {
						return fmt.Errorf("line %d: %w", i, err)
					}
					if got != w {
						return fmt.Errorf("line %d = %q, want %q", i, got, w)
					}
				}
				return f.Close()
			}},
		verifier.Obligation{Module: "ulib", Name: "seek-cur-accounts-read-ahead", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				f, err := rt.Open("/sk", fs.OCreate|fs.ORdWr)
				if err != nil {
					return err
				}
				payload := make([]byte, 3000)
				for i := range payload {
					payload[i] = byte(i)
				}
				if _, err := f.Write(payload); err != nil {
					return err
				}
				if _, err := f.Seek(0, fs.SeekSet); err != nil {
					return err
				}
				logical := int64(0)
				for i := 0; i < 60; i++ {
					if r.Intn(2) == 0 {
						n := 1 + r.Intn(50)
						buf := make([]byte, n)
						got, err := f.Read(buf)
						if err != nil {
							return err
						}
						for j := 0; j < got; j++ {
							if buf[j] != byte(logical+int64(j)) {
								return fmt.Errorf("read at %d returned wrong byte", logical)
							}
						}
						logical += int64(got)
					} else {
						delta := int64(r.Intn(41)) - 20
						target := logical + delta
						if target < 0 || target > int64(len(payload)) {
							continue
						}
						pos, err := f.Seek(delta, fs.SeekCur)
						if err != nil {
							return err
						}
						if pos != target {
							return fmt.Errorf("SeekCur(%+d) from %d = %d, want %d (read-ahead not accounted)",
								delta, logical, pos, target)
						}
						logical = target
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "ulib", Name: "calloc-zeroes-reused-blocks", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := env.NewProcess()
				if err != nil {
					return err
				}
				rt := New(s)
				for i := 0; i < 40; i++ {
					n := uint64(8 + r.Intn(200))
					va, err := rt.Malloc(n)
					if err != nil {
						return err
					}
					if err := rt.Memset(va, 0xAA, n); err != nil {
						return err
					}
					if err := rt.Free(va); err != nil {
						return err
					}
					vb, err := rt.Calloc(n)
					if err != nil {
						return err
					}
					buf := make([]byte, n)
					if e := s.MemRead(vb, buf); e != sys.EOK {
						return errnoErr("read calloc", e)
					}
					for j, b := range buf {
						if b != 0 {
							return fmt.Errorf("calloc byte %d = %#x (dirty reuse)", j, b)
						}
					}
					if err := rt.Free(vb); err != nil {
						return err
					}
				}
				return nil
			}},
	)
}
