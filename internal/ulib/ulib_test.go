package ulib_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/ulib"
	"github.com/verified-os/vnros/internal/verifier"
)

// newRuntime boots a system and returns a ulib runtime for a fresh
// process, plus the system for spawning sibling threads.
func newRuntime(t *testing.T) (*core.System, *ulib.Runtime) {
	t.Helper()
	system, err := core.Boot(core.Config{Cores: 2, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		t.Fatal(err)
	}
	h, err := system.SpawnHandle(initSys, "ulib-test")
	if err != nil {
		t.Fatal(err)
	}
	return system, ulib.New(h)
}

func TestStdioWriteReadLine(t *testing.T) {
	_, rt := newRuntime(t)
	f, err := rt.Open("/log", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Printf("line %d\n", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("line 2\nline 3\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"line 1", "line 2", "line 3"} {
		got, err := f.ReadLine()
		if err != nil || got != want {
			t.Fatalf("line %d = %q, %v", i, got, err)
		}
	}
	if _, err := f.ReadLine(); err == nil {
		t.Fatal("ReadLine past EOF succeeded")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != ulib.ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
}

func TestStdioBufferingDefersSyscalls(t *testing.T) {
	_, rt := newRuntime(t)
	f, err := rt.Open("/buffered", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("pending"); err != nil {
		t.Fatal(err)
	}
	// Not flushed yet: the file is still empty via a direct stat.
	st, e := rt.S.Stat("/buffered")
	if e != sys.EOK || st.Size != 0 {
		t.Fatalf("unflushed size = %d, %v", st.Size, e)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ = rt.S.Stat("/buffered")
	if st.Size != 7 {
		t.Fatalf("flushed size = %d", st.Size)
	}
}

func TestStdioWriteAfterReadRepositions(t *testing.T) {
	_, rt := newRuntime(t)
	f, err := rt.Open("/rw", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("abcdefgh"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	two := make([]byte, 2)
	if _, err := f.Read(two); err != nil || string(two) != "ab" {
		t.Fatalf("read = %q, %v", two, err)
	}
	// Write must land at logical position 2, not the read-ahead's end.
	if _, err := f.WriteString("XY"); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	fd, _ := rt.S.Open("/rw", fs.ORdOnly)
	buf := make([]byte, 8)
	rt.S.Read(fd, buf)
	if string(buf) != "abXYefgh" {
		t.Fatalf("contents = %q, want abXYefgh", buf)
	}
}

func TestMallocFreeReuse(t *testing.T) {
	_, rt := newRuntime(t)
	a, err := rt.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if err := rt.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := rt.Malloc(50) // fits in the freed block
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed block not reused: %#x vs %#x", uint64(c), uint64(a))
	}
	if err := rt.Free(a); err != nil {
		t.Fatal(err) // c == a, so this frees c
	}
	if err := rt.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	if err := rt.Free(0xdead000); err == nil {
		t.Fatal("foreign free accepted")
	}
}

func TestCallocZeroes(t *testing.T) {
	_, rt := newRuntime(t)
	a, err := rt.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(a, 0xff, 64); err != nil {
		t.Fatal(err)
	}
	if err := rt.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := rt.Calloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Logf("calloc got fresh block; zero check still valid")
	}
	buf := make([]byte, 64)
	if e := rt.S.MemRead(b, buf); e != sys.EOK {
		t.Fatal(e)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("calloc byte %d = %#x", i, v)
		}
	}
}

func TestCStrings(t *testing.T) {
	_, rt := newRuntime(t)
	va, err := rt.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	want := "a moderately sized string ✓"
	if err := rt.WriteCString(va, want); err != nil {
		t.Fatal(err)
	}
	n, err := rt.Strlen(va)
	if err != nil || n != uint64(len(want)) {
		t.Fatalf("strlen = %d, %v", n, err)
	}
	got, err := rt.ReadCString(va)
	if err != nil || got != want {
		t.Fatalf("cstring = %q, %v", got, err)
	}
	// Strings longer than one Strlen chunk (64 bytes).
	long := strings.Repeat("x", 300)
	vb, err := rt.Malloc(301)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteCString(vb, long); err != nil {
		t.Fatal(err)
	}
	if n, _ := rt.Strlen(vb); n != 300 {
		t.Fatalf("long strlen = %d", n)
	}
}

func TestMemcpyMemset(t *testing.T) {
	_, rt := newRuntime(t)
	src, err := rt.Malloc(5000) // crosses a page
	if err != nil {
		t.Fatal(err)
	}
	dst, err := rt.Malloc(5000)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB, 0xCD, 0xEF}, 1500)
	if e := rt.S.MemWrite(src, data); e != sys.EOK {
		t.Fatal(e)
	}
	if err := rt.Memcpy(dst, src, uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if e := rt.S.MemRead(dst, got); e != sys.EOK {
		t.Fatal(e)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("memcpy mismatch")
	}
}

func TestPthreadMutexUnderContention(t *testing.T) {
	system, rt := newRuntime(t)
	m, err := rt.NewMutex()
	if err != nil {
		t.Fatal(err)
	}
	counter, err := rt.Calloc(4)
	if err != nil {
		t.Fatal(err)
	}
	const threads, iters = 3, 40
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		th, err := system.NewThreadHandle(rt.S)
		if err != nil {
			t.Fatal(err)
		}
		trt := ulib.New(th)
		wg.Add(1)
		go func() {
			defer wg.Done()
			lm, err := trt.AdoptMutex(m.Word)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < iters; j++ {
				if err := lm.Lock(); err != nil {
					errs <- err
					return
				}
				var b [4]byte
				if e := th.MemRead(counter, b[:]); e != sys.EOK {
					errs <- e
					return
				}
				v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
				v++
				nb := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
				if e := th.MemWrite(counter, nb[:]); e != sys.EOK {
					errs <- e
					return
				}
				if err := lm.Unlock(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < threads; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var b [4]byte
	if e := rt.S.MemRead(counter, b[:]); e != sys.EOK {
		t.Fatal(e)
	}
	got := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if got != threads*iters {
		t.Fatalf("counter = %d, want %d", got, threads*iters)
	}
}

func TestMutexUnlockOfUnlocked(t *testing.T) {
	_, rt := newRuntime(t)
	m, err := rt.NewMutex()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err == nil {
		t.Fatal("unlock of unlocked mutex accepted")
	}
	ok, err := m.TryLock()
	if err != nil || !ok {
		t.Fatalf("trylock = %t, %v", ok, err)
	}
	ok, err = m.TryLock()
	if err != nil || ok {
		t.Fatalf("second trylock = %t, %v", ok, err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	core.RegisterAllObligations(g)
	rep := g.Run(verifier.Options{Seed: 71, Module: "ulib"})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
	if len(rep.Results) < 5 {
		t.Fatalf("only %d ulib VCs ran", len(rep.Results))
	}
}
