// Package ulib is the user-space standard library — the §1 "system
// libraries (e.g., libc)" component and the paper's §3 suggestion made
// concrete: "implement and verify core 'standard library' features like
// those in glibc and pthreads, connecting to the model of the operating
// system. This allows the kernel APIs to remain narrow while giving
// applications a higher-level programming API with an easier-to-use
// spec."
//
// Everything here is built strictly on the Sys syscall contract:
// buffered stdio over read/write/seek, a malloc over mmap, C-string
// routines over the process-memory model, and a futex mutex over
// MemCAS32 + FutexWait/FutexWake (the exact layering the paper sketches:
// "we might expose futexes from the kernel and then verify a userspace
// mutex implementation on top").
package ulib

import (
	"errors"
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/sys"
)

// Runtime is a process's library state (think: the C runtime).
type Runtime struct {
	S *sys.Sys

	// malloc state: slabs of mmap'd memory carved by a local free list.
	// Metadata lives library-side (as glibc's does); payload bytes live
	// in process memory.
	slabs  []slab
	blocks map[mmu.VAddr]*block
}

// Library errors.
var (
	ErrClosed  = errors.New("ulib: file is closed")
	ErrNoMem   = errors.New("ulib: out of memory")
	ErrBadFree = errors.New("ulib: free of unallocated pointer")
	ErrSyscall = errors.New("ulib: syscall failed")
)

// errnoErr wraps a kernel errno.
func errnoErr(op string, e sys.Errno) error {
	return fmt.Errorf("%w: %s: %v", ErrSyscall, op, e)
}

// New creates a runtime over a process's Sys handle.
func New(s *sys.Sys) *Runtime {
	return &Runtime{S: s, blocks: make(map[mmu.VAddr]*block)}
}

// --- malloc over mmap ---

// slabSize is how much the allocator mmaps at a time.
const slabSize = 16 * mmu.L1PageSize

type slab struct {
	base mmu.VAddr
	off  uint64 // bump pointer
}

type block struct {
	va   mmu.VAddr
	size uint64
	free bool
	// next free block of at least this size class; single free list.
}

// Malloc returns n bytes of process memory. The allocator is a simple
// first-fit free list over bump-allocated slabs — the NrOS user
// allocator's scheme, scaled down.
func (rt *Runtime) Malloc(n uint64) (mmu.VAddr, error) {
	if n == 0 {
		n = 1
	}
	n = (n + 15) &^ 15
	// First fit among freed blocks.
	for _, b := range rt.blocks {
		if b.free && b.size >= n {
			b.free = false
			return b.va, nil
		}
	}
	// Bump from the last slab.
	if len(rt.slabs) > 0 {
		s := &rt.slabs[len(rt.slabs)-1]
		if s.off+n <= slabSize {
			va := s.base + mmu.VAddr(s.off)
			s.off += n
			rt.blocks[va] = &block{va: va, size: n}
			return va, nil
		}
	}
	// New slab.
	want := uint64(slabSize)
	if n > want {
		want = (n + mmu.L1PageSize - 1) &^ (mmu.L1PageSize - 1)
	}
	base, e := rt.S.MMap(want)
	if e != sys.EOK {
		return 0, fmt.Errorf("%w: mmap: %v", ErrNoMem, e)
	}
	rt.slabs = append(rt.slabs, slab{base: base, off: n})
	rt.blocks[base] = &block{va: base, size: n}
	return base, nil
}

// Free releases a Malloc'd block for reuse (slabs are returned to the
// kernel only at process exit, as in most libc allocators).
func (rt *Runtime) Free(va mmu.VAddr) error {
	b := rt.blocks[va]
	if b == nil || b.free {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(va))
	}
	b.free = true
	return nil
}

// Calloc is Malloc plus explicit zeroing through the memory model (mmap
// frames arrive zeroed, but reused blocks do not).
func (rt *Runtime) Calloc(n uint64) (mmu.VAddr, error) {
	va, err := rt.Malloc(n)
	if err != nil {
		return 0, err
	}
	if err := rt.Memset(va, 0, n); err != nil {
		return 0, err
	}
	return va, nil
}

// Sync makes all acknowledged filesystem mutations durable — libc's
// sync(2) wrapper over the kernel's durability transition. Without a
// journal this snapshots; with one it group-commits the pending tail.
func (rt *Runtime) Sync() error {
	if e := rt.S.Sync(); e != sys.EOK {
		return errnoErr("sync", e)
	}
	return nil
}

// --- mem/str routines over the process-memory model ---

// Memcpy copies n bytes of process memory from src to dst.
func (rt *Runtime) Memcpy(dst, src mmu.VAddr, n uint64) error {
	buf := make([]byte, n)
	if e := rt.S.MemRead(src, buf); e != sys.EOK {
		return errnoErr("memcpy read", e)
	}
	if e := rt.S.MemWrite(dst, buf); e != sys.EOK {
		return errnoErr("memcpy write", e)
	}
	return nil
}

// Memset fills n bytes at va with c.
func (rt *Runtime) Memset(va mmu.VAddr, c byte, n uint64) error {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = c
	}
	if e := rt.S.MemWrite(va, buf); e != sys.EOK {
		return errnoErr("memset", e)
	}
	return nil
}

// maxCString bounds Strlen scans so a missing NUL cannot loop forever.
const maxCString = 1 << 20

// WriteCString stores s NUL-terminated at va.
func (rt *Runtime) WriteCString(va mmu.VAddr, s string) error {
	buf := append([]byte(s), 0)
	if e := rt.S.MemWrite(va, buf); e != sys.EOK {
		return errnoErr("strcpy", e)
	}
	return nil
}

// Strlen scans for the NUL terminator, chunk by chunk, as a libc
// implementation does.
func (rt *Runtime) Strlen(va mmu.VAddr) (uint64, error) {
	var n uint64
	chunk := make([]byte, 64)
	for n < maxCString {
		if e := rt.S.MemRead(va+mmu.VAddr(n), chunk); e != sys.EOK {
			return 0, errnoErr("strlen", e)
		}
		for i, b := range chunk {
			if b == 0 {
				return n + uint64(i), nil
			}
		}
		n += uint64(len(chunk))
	}
	return 0, fmt.Errorf("%w: unterminated string at %#x", ErrSyscall, uint64(va))
}

// ReadCString loads the NUL-terminated string at va.
func (rt *Runtime) ReadCString(va mmu.VAddr) (string, error) {
	n, err := rt.Strlen(va)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if e := rt.S.MemRead(va, buf); e != sys.EOK {
		return "", errnoErr("read cstring", e)
	}
	return string(buf), nil
}

// Strcmp compares the strings at a and b, returning <0, 0, >0.
func (rt *Runtime) Strcmp(a, b mmu.VAddr) (int, error) {
	sa, err := rt.ReadCString(a)
	if err != nil {
		return 0, err
	}
	sb, err := rt.ReadCString(b)
	if err != nil {
		return 0, err
	}
	switch {
	case sa < sb:
		return -1, nil
	case sa > sb:
		return 1, nil
	}
	return 0, nil
}

// --- buffered stdio ---

// BufSize is the stdio buffer size.
const BufSize = 4096

// File is a buffered stream over a descriptor (a FILE*).
type File struct {
	rt     *Runtime
	fd     fs.FD
	closed bool
	// wbuf accumulates writes until Flush/BufSize.
	wbuf []byte
	// rbuf holds read-ahead; rpos indexes into it.
	rbuf []byte
	rpos int
}

// Open opens a buffered stream (flags as in sys: ORdWr|OCreate etc).
func (rt *Runtime) Open(path string, flags sys.OpenFlag) (*File, error) {
	fd, e := rt.S.Open(path, flags)
	if e != sys.EOK {
		return nil, errnoErr("open "+path, e)
	}
	return &File{rt: rt, fd: fd, wbuf: make([]byte, 0, BufSize)}, nil
}

// syncForWrite repositions the kernel offset when unread read-ahead
// exists: the stream's logical position trails the kernel offset by the
// unread bytes, and a write must land at the logical position. (ANSI C
// leaves read→write without an intervening seek undefined; this stdio
// defines it, which is what the stdio-equals-direct-syscalls VC checks.)
func (f *File) syncForWrite() error {
	if unread := len(f.rbuf) - f.rpos; unread > 0 {
		f.rbuf = nil
		f.rpos = 0
		if _, e := f.rt.S.Seek(f.fd, -int64(unread), fs.SeekCur); e != sys.EOK {
			return errnoErr("write sync seek", e)
		}
	}
	return nil
}

// Write buffers p, flushing full buffers — libc's fwrite.
func (f *File) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.syncForWrite(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		space := BufSize - len(f.wbuf)
		if space == 0 {
			if err := f.Flush(); err != nil {
				return total, err
			}
			space = BufSize
		}
		n := len(p)
		if n > space {
			n = space
		}
		f.wbuf = append(f.wbuf, p[:n]...)
		p = p[n:]
		total += n
	}
	return total, nil
}

// WriteString writes s.
func (f *File) WriteString(s string) (int, error) { return f.Write([]byte(s)) }

// Printf formats into the stream — fprintf.
func (f *File) Printf(format string, args ...any) (int, error) {
	return f.WriteString(fmt.Sprintf(format, args...))
}

// Flush pushes buffered writes through the syscall boundary.
func (f *File) Flush() error {
	if f.closed {
		return ErrClosed
	}
	for len(f.wbuf) > 0 {
		n, e := f.rt.S.Write(f.fd, f.wbuf)
		if e != sys.EOK {
			return errnoErr("write", e)
		}
		f.wbuf = f.wbuf[n:]
	}
	f.wbuf = f.wbuf[:0]
	return nil
}

// Sync flushes the stream's buffer and then asks the kernel to make
// every acknowledged mutation durable (one journal group commit) —
// libc's fflush followed by fsync. On return the file's contents
// survive a crash up to this point.
func (f *File) Sync() error {
	if err := f.Flush(); err != nil {
		return err
	}
	return f.rt.Sync()
}

// Writev flushes any buffered data and then writes the buffers through
// one batched submission (Sys.Writev): one boundary crossing and one
// combiner round for the whole vector, where a Write loop would pay the
// crossing per buffer.
func (f *File) Writev(bufs [][]byte) (uint64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.syncForWrite(); err != nil {
		return 0, err
	}
	if err := f.Flush(); err != nil {
		return 0, err
	}
	n, e := f.rt.S.Writev(f.fd, bufs)
	if e != sys.EOK {
		return n, errnoErr("writev", e)
	}
	return n, nil
}

// Read fills p from the read-ahead buffer, refilling via the read
// syscall — fread. A short count with nil error means EOF.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	// Reads must observe writes: flush first, as libc does on streams
	// used for update.
	if err := f.Flush(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		if f.rpos >= len(f.rbuf) {
			buf := make([]byte, BufSize)
			n, e := f.rt.S.Read(f.fd, buf)
			if e != sys.EOK {
				return total, errnoErr("read", e)
			}
			if n == 0 {
				return total, nil // EOF
			}
			f.rbuf = buf[:n]
			f.rpos = 0
		}
		n := copy(p, f.rbuf[f.rpos:])
		f.rpos += n
		p = p[n:]
		total += n
	}
	return total, nil
}

// ReadLine reads through the next '\n' (not returned) — fgets.
func (f *File) ReadLine() (string, error) {
	var out []byte
	one := make([]byte, 1)
	for {
		n, err := f.Read(one)
		if err != nil {
			return string(out), err
		}
		if n == 0 {
			if len(out) == 0 {
				return "", fmt.Errorf("%w: EOF", ErrSyscall)
			}
			return string(out), nil
		}
		if one[0] == '\n' {
			return string(out), nil
		}
		out = append(out, one[0])
	}
}

// Seek flushes and repositions; read-ahead is discarded (libc semantics
// after fseek). The new offset accounts for unread buffered bytes. The
// signature matches io.Seeker.
func (f *File) Seek(off int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.Flush(); err != nil {
		return 0, err
	}
	if whence == fs.SeekCur {
		// The kernel offset is ahead of the stream by the unread
		// read-ahead bytes.
		off -= int64(len(f.rbuf) - f.rpos)
	}
	f.rbuf = nil
	f.rpos = 0
	pos, e := f.rt.S.Seek(f.fd, off, whence)
	if e != sys.EOK {
		return 0, errnoErr("seek", e)
	}
	return int64(pos), nil
}

// Close flushes and releases the descriptor.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	if err := f.Flush(); err != nil {
		return err
	}
	f.closed = true
	if e := f.rt.S.Close(f.fd); e != sys.EOK {
		return errnoErr("close", e)
	}
	return nil
}
