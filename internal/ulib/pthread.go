package ulib

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/sys"
)

// This file is the pthreads sketch from §3/§4.1: a mutex and condition
// variable whose state is a 32-bit word in *process memory*, built on
// the MemCAS32 atomic and the kernel futex — the exact "futexes from the
// kernel, userspace mutex on top" layering, following Drepper's
// "Futexes are Tricky" (the paper's [14]) mutex variant 2.

// Mutex is a futex-based mutex over a process-memory word:
// 0 = unlocked, 1 = locked, 2 = locked with (possible) waiters.
type Mutex struct {
	rt   *Runtime
	Word mmu.VAddr
}

// NewMutex allocates the mutex word on the process heap.
func (rt *Runtime) NewMutex() (*Mutex, error) {
	va, err := rt.Calloc(4)
	if err != nil {
		return nil, err
	}
	return &Mutex{rt: rt, Word: va}, nil
}

// AdoptMutex wraps an existing mutex word — how a second thread (with
// its own syscall handle) shares a mutex created by the first.
func (rt *Runtime) AdoptMutex(word mmu.VAddr) (*Mutex, error) {
	if word == 0 {
		return nil, fmt.Errorf("%w: nil mutex word", ErrSyscall)
	}
	return &Mutex{rt: rt, Word: word}, nil
}

// cas wraps the atomic instruction.
func (m *Mutex) cas(old, new uint32) (uint32, bool, error) {
	cur, swapped, e := m.rt.S.MemCAS32(m.Word, old, new)
	if e != sys.EOK {
		return 0, false, errnoErr("cas", e)
	}
	return cur, swapped, nil
}

// Lock acquires the mutex.
func (m *Mutex) Lock() error {
	// Fast path.
	if _, ok, err := m.cas(0, 1); err != nil || ok {
		return err
	}
	for {
		// Announce contention: 1 -> 2 (or take the lock 0 -> 2).
		cur, ok, err := m.cas(1, 2)
		if err != nil {
			return err
		}
		if !ok && cur == 0 {
			if _, took, err := m.cas(0, 2); err != nil {
				return err
			} else if took {
				return nil
			}
			continue
		}
		// Sleep while the word stays 2.
		if e := m.rt.S.FutexWait(m.Word, 2); e != sys.EOK && e != sys.EAGAIN {
			return errnoErr("futex wait", e)
		}
		if _, took, err := m.cas(0, 2); err != nil {
			return err
		} else if took {
			return nil
		}
	}
}

// TryLock acquires without blocking.
func (m *Mutex) TryLock() (bool, error) {
	_, ok, err := m.cas(0, 1)
	return ok, err
}

// Unlock releases the mutex, waking a waiter if contended.
func (m *Mutex) Unlock() error {
	// Swap to 0 via CAS loop (we may hold it as 1 or 2).
	for {
		cur, ok, err := m.cas(1, 0)
		if err != nil {
			return err
		}
		if ok {
			return nil // no waiters
		}
		if cur == 2 {
			if _, ok, err := m.cas(2, 0); err != nil {
				return err
			} else if ok {
				if _, e := m.rt.S.FutexWake(m.Word, 1); e != sys.EOK {
					return errnoErr("futex wake", e)
				}
				return nil
			}
			continue
		}
		return fmt.Errorf("%w: unlock of unlocked mutex (word=%d)", ErrSyscall, cur)
	}
}

// Cond is a condition variable over a sequence word in process memory.
type Cond struct {
	rt  *Runtime
	Seq mmu.VAddr
}

// NewCond allocates the sequence word.
func (rt *Runtime) NewCond() (*Cond, error) {
	va, err := rt.Calloc(4)
	if err != nil {
		return nil, err
	}
	return &Cond{rt: rt, Seq: va}, nil
}

// readSeq loads the sequence word.
func (c *Cond) readSeq() (uint32, error) {
	var b [4]byte
	if e := c.rt.S.MemRead(c.Seq, b[:]); e != sys.EOK {
		return 0, errnoErr("cond read", e)
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Wait atomically releases m and sleeps until a signal arrives after
// the snapshot, then reacquires m. Spurious wakeups are possible;
// callers loop on their predicate, as with pthreads.
func (c *Cond) Wait(m *Mutex) error {
	snap, err := c.readSeq()
	if err != nil {
		return err
	}
	if err := m.Unlock(); err != nil {
		return err
	}
	if e := c.rt.S.FutexWait(c.Seq, snap); e != sys.EOK && e != sys.EAGAIN {
		return errnoErr("cond wait", e)
	}
	return m.Lock()
}

// bump atomically increments the sequence word.
func (c *Cond) bump() error {
	for {
		cur, err := c.readSeq()
		if err != nil {
			return err
		}
		if _, ok, e := c.rt.S.MemCAS32(c.Seq, cur, cur+1); e != sys.EOK {
			return errnoErr("cond bump", e)
		} else if ok {
			return nil
		}
	}
}

// Signal wakes one waiter.
func (c *Cond) Signal() error {
	if err := c.bump(); err != nil {
		return err
	}
	if _, e := c.rt.S.FutexWake(c.Seq, 1); e != sys.EOK {
		return errnoErr("cond signal", e)
	}
	return nil
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() error {
	if err := c.bump(); err != nil {
		return err
	}
	if _, e := c.rt.S.FutexWake(c.Seq, 1<<30); e != sys.EOK {
		return errnoErr("cond broadcast", e)
	}
	return nil
}
