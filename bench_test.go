// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus the ablations DESIGN.md commits to and
// micro-benchmarks of the substrates. Figures 1b/1c sweep simulated
// core counts {1,8,16,24,28} (the paper's 2×14-core testbed) for both
// the verified and unverified page-table variants; the headline result
// to reproduce is the *shape*: latency grows with core count through NR
// log contention, and verified tracks unverified closely.
//
// Custom metrics: us/map and us/unmap are the paper's y-axes (mean
// syscall latency); vcs and vc-max-ms describe the Figure 1a run.
package vnros_test

import (
	"fmt"
	"testing"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/experiments"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/sys"
)

// withStats runs a benchmark body with the kstats gate open, restoring
// the disabled default afterwards. The *StatsEnabled variants pin the
// internal/obs overhead budget: they must stay within a few percent of
// their plain counterparts.
func withStats(b *testing.B, f func(b *testing.B)) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	f(b)
}

// benchCores are the Figure 1b/1c x-axis values.
var benchCores = []int{1, 8, 16, 24, 28}

// opsPerCore balances runtime against measurement stability for the
// figure sweeps.
const opsPerCore = 200

// BenchmarkFig1aVerificationConditions runs the full VC suite — the
// paper's "total time to verify our code" — reporting the VC count and
// the slowest single VC alongside the total.
func BenchmarkFig1aVerificationConditions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := vnros.Verify(int64(2026 + i))
		if failed := rep.Failed(); len(failed) > 0 {
			b.Fatalf("%d VCs failed; first: %s: %v",
				len(failed), failed[0].Obligation.ID(), failed[0].Err)
		}
		b.ReportMetric(float64(len(rep.Results)), "vcs")
		b.ReportMetric(float64(rep.Max().Milliseconds()), "vc-max-ms")
	}
}

// BenchmarkFig1bMapLatency is Figure 1b: map latency vs cores, verified
// vs unverified.
func BenchmarkFig1bMapLatency(b *testing.B) {
	for _, variant := range []pt.Variant{pt.VariantUnverified, pt.VariantVerified} {
		for _, cores := range benchCores {
			b.Run(fmt.Sprintf("%s/cores=%d", variant, cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := experiments.MapLatency(variant, cores, opsPerCore)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(p.Mean.Nanoseconds())/1000, "us/map")
				}
			})
		}
	}
}

// BenchmarkFig1cUnmapLatency is Figure 1c: unmap latency vs cores.
func BenchmarkFig1cUnmapLatency(b *testing.B) {
	for _, variant := range []pt.Variant{pt.VariantUnverified, pt.VariantVerified} {
		for _, cores := range benchCores {
			b.Run(fmt.Sprintf("%s/cores=%d", variant, cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := experiments.UnmapLatency(variant, cores, opsPerCore)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(p.Mean.Nanoseconds())/1000, "us/unmap")
				}
			})
		}
	}
}

// BenchmarkAblationNRvsMutex is DESIGN.md ablation 1.
func BenchmarkAblationNRvsMutex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nrMean, muMean, err := experiments.AblationNRvsMutex(8, opsPerCore)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(nrMean.Nanoseconds())/1000, "us/nr-map")
		b.ReportMetric(float64(muMean.Nanoseconds())/1000, "us/mutex-map")
	}
}

// BenchmarkAblationTLB is DESIGN.md ablation 2.
func BenchmarkAblationTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		warm, cold, err := experiments.AblationTLB(20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(warm.Nanoseconds()), "ns/warm-xlate")
		b.ReportMetric(float64(cold.Nanoseconds()), "ns/cold-xlate")
	}
}

// BenchmarkAblationSharding is DESIGN.md ablation 3.
func BenchmarkAblationSharding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single, sharded, err := experiments.AblationSharding(4, 4, 3000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single, "ops/s-1log")
		b.ReportMetric(sharded, "ops/s-4logs")
	}
}

// BenchmarkAblationGhostChecks is DESIGN.md ablation 4: the cost of
// runtime verification artifacts when enabled, and that the shipped
// configuration pays nothing.
func BenchmarkAblationGhostChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off, on, err := experiments.AblationGhostChecks(2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(off.Nanoseconds())/1000, "us/ghost-off")
		b.ReportMetric(float64(on.Nanoseconds())/1000, "us/ghost-on")
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkNRWriteSingleThread measures the NR log append+apply path
// uncontended.
func BenchmarkNRWriteSingleThread(b *testing.B) {
	ras, err := pt.NewReplicated(pt.ReplicatedOptions{Variant: pt.VariantVerified, Replicas: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := ras.Register(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := mmu.VAddr(0x1000_0000_0000 + uint64(i)*mmu.L1PageSize)
		resp := ctx.Execute(pt.ASWrite{Kind: "map", VA: va, Frame: 0x200_0000, Size: mmu.L1PageSize})
		if resp.Outcome != pt.OutcomeOK {
			b.Fatal(resp.Outcome)
		}
	}
}

// BenchmarkNRWriteSingleThreadStatsEnabled is BenchmarkNRWriteSingleThread
// with kstats recording on (batch-size and combine-latency histograms
// live on this path).
func BenchmarkNRWriteSingleThreadStatsEnabled(b *testing.B) {
	withStats(b, BenchmarkNRWriteSingleThread)
}

// BenchmarkNRReadLocalReplica measures replica-local reads.
func BenchmarkNRReadLocalReplica(b *testing.B) {
	ras, err := pt.NewReplicated(pt.ReplicatedOptions{Variant: pt.VariantVerified, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := ras.Register(0)
	if err != nil {
		b.Fatal(err)
	}
	ctx.Execute(pt.ASWrite{Kind: "map", VA: 0x4000_0000, Frame: 0x200_0000, Size: mmu.L1PageSize})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := ctx.ExecuteRead(pt.ASRead{Kind: "resolve", VA: 0x4000_0000})
		if !resp.OK {
			b.Fatal("resolve missed")
		}
	}
}

// BenchmarkMMUTranslateWarm measures a TLB hit.
func BenchmarkMMUTranslateWarm(b *testing.B) {
	pm := mem.New(64 << 20)
	src := pt.NewSimpleFrameSource(pm, 0x1000, 16<<20)
	as, err := pt.NewVerified(pm, src, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := as.Map(0x4000_0000, 0x80_0000, mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
		b.Fatal(err)
	}
	u := mmu.New(pm)
	u.SetRoot(as.Root(), 1)
	if _, f := u.Translate(0x4000_0000, mmu.AccessRead); f != nil {
		b.Fatal(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := u.Translate(0x4000_0000, mmu.AccessRead); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkMMUPageWalk measures the full 4-level walk (no TLB).
func BenchmarkMMUPageWalk(b *testing.B) {
	pm := mem.New(64 << 20)
	src := pt.NewSimpleFrameSource(pm, 0x1000, 16<<20)
	as, err := pt.NewVerified(pm, src, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := as.Map(0x4000_0000, 0x80_0000, mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
		b.Fatal(err)
	}
	w := mmu.Walker{Mem: pm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := w.Walk(as.Root(), 0x4000_0000, mmu.AccessRead); res.Fault != nil {
			b.Fatal(res.Fault)
		}
	}
}

// BenchmarkSyscallPath measures one spec-checked write syscall through
// marshalling and the kernel state machine.
func BenchmarkSyscallPath(b *testing.B) {
	system, err := vnros.Boot(vnros.Config{Cores: 2})
	if err != nil {
		b.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		b.Fatal(err)
	}
	fd, e := initSys.Open("/bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		b.Fatal(e)
	}
	payload := []byte("sixteen bytes!!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, e := initSys.Write(fd, payload); e != vnros.EOK {
			b.Fatal(e)
		}
		if _, e := initSys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
			b.Fatal(e)
		}
	}
	b.StopTimer()
	if err := initSys.ContractErr(); err != nil {
		b.Fatal(err)
	}
}

// ringBenchBatch is the SQ depth the ring benchmarks submit per
// crossing (the acceptance point for the batched-vs-scalar speedup).
const ringBenchBatch = 32

// ringBenchSetup boots a 2-core system and opens the benchmark file;
// contract checking is live (Init enables it), so both ring benchmarks
// measure the spec-checked path.
func ringBenchSetup(b *testing.B) (*vnros.Sys, vnros.FD) {
	b.Helper()
	system, err := vnros.Boot(vnros.Config{Cores: 2})
	if err != nil {
		b.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		b.Fatal(err)
	}
	fd, e := initSys.Open("/ring-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		b.Fatal(e)
	}
	return initSys, fd
}

// BenchmarkRingSubmit measures the batched submission ring: one seek
// plus 32 writes drained through a single SQ crossing (one combiner
// round, one view-snapshot pair for the whole batch).
func BenchmarkRingSubmit(b *testing.B) {
	initSys, fd := ringBenchSetup(b)
	payload := []byte("sixteen bytes!!!")
	ops := make([]vnros.Op, 0, ringBenchBatch+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = ops[:0]
		ops = append(ops, vnros.OpSeek(fd, 0, vnros.SeekSet))
		for j := 0; j < ringBenchBatch; j++ {
			ops = append(ops, vnros.OpWrite(fd, payload))
		}
		comps, e := initSys.SubmitWait(ops)
		if e != vnros.EOK {
			b.Fatal(e)
		}
		for _, c := range comps {
			if c.Errno != vnros.EOK {
				b.Fatal(c.Errno)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*(ringBenchBatch+1)/b.Elapsed().Seconds(), "ops/s")
	if err := initSys.ContractErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRingPerCallBaseline issues the identical op sequence one
// scalar syscall at a time — the loop BenchmarkRingSubmit must beat by
// ≥2× (each call pays its own crossing, combiner round, and contract
// snapshot pair).
func BenchmarkRingPerCallBaseline(b *testing.B) {
	initSys, fd := ringBenchSetup(b)
	payload := []byte("sixteen bytes!!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, e := initSys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
			b.Fatal(e)
		}
		for j := 0; j < ringBenchBatch; j++ {
			if _, e := initSys.Write(fd, payload); e != vnros.EOK {
				b.Fatal(e)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*(ringBenchBatch+1)/b.Elapsed().Seconds(), "ops/s")
	if err := initSys.ContractErr(); err != nil {
		b.Fatal(err)
	}
}

// walBenchSetup boots a journaled 2-core system and opens the benchmark
// file; every write is recorded in the WAL and every sync is a journal
// flush.
func walBenchSetup(b *testing.B) (*vnros.Sys, vnros.FD) {
	b.Helper()
	system, err := vnros.Boot(vnros.Config{Cores: 2, WAL: true})
	if err != nil {
		b.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		b.Fatal(err)
	}
	fd, e := initSys.Open("/wal-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		b.Fatal(e)
	}
	return initSys, fd
}

// BenchmarkWalGroupCommit measures journal group commit: 32 writes plus
// one sync marker per submission — the whole batch becomes durable via
// a single journal flush.
func BenchmarkWalGroupCommit(b *testing.B) {
	initSys, fd := walBenchSetup(b)
	payload := []byte("sixteen bytes!!!")
	ops := make([]vnros.Op, 0, ringBenchBatch+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = ops[:0]
		for j := 0; j < ringBenchBatch; j++ {
			ops = append(ops, vnros.OpWrite(fd, payload))
		}
		ops = append(ops, vnros.OpSync())
		comps, e := initSys.SubmitWait(ops)
		if e != vnros.EOK {
			b.Fatal(e)
		}
		for _, c := range comps {
			if c.Errno != vnros.EOK {
				b.Fatal(c.Errno)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*ringBenchBatch/b.Elapsed().Seconds(), "ops/s")
	if err := initSys.ContractErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWalPerOpCommit issues the identical writes with a scalar
// Sync after each — one journal flush per operation, the baseline
// BenchmarkWalGroupCommit must beat by ≥2× at batch 32.
func BenchmarkWalPerOpCommit(b *testing.B) {
	initSys, fd := walBenchSetup(b)
	payload := []byte("sixteen bytes!!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < ringBenchBatch; j++ {
			if _, e := initSys.Write(fd, payload); e != vnros.EOK {
				b.Fatal(e)
			}
			if e := initSys.Sync(); e != vnros.EOK {
				b.Fatal(e)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*ringBenchBatch/b.Elapsed().Seconds(), "ops/s")
	if err := initSys.ContractErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSyscallPathStatsEnabled is BenchmarkSyscallPath with kstats
// recording on (dispatch-boundary OpStats, kernel.apply counts, trace
// emit, fs latency histograms all fire).
func BenchmarkSyscallPathStatsEnabled(b *testing.B) {
	withStats(b, BenchmarkSyscallPath)
}

// BenchmarkMarshalSyscallCodec measures one op+resp round trip of the
// wire codec.
func BenchmarkMarshalSyscallCodec(b *testing.B) {
	op := sys.WriteOp{Num: sys.NumWrite, PID: 1, FD: 3, Data: []byte("payload payload payload")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, payload := sys.EncodeWrite(op)
		if _, err := sys.DecodeWrite(frame, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalEncoder measures the raw encoder.
func BenchmarkMarshalEncoder(b *testing.B) {
	buf := make([]byte, 0, 256)
	data := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := marshal.NewEncoder(buf)
		e.U64(uint64(i)).String("/some/path").BytesField(data).Bool(true)
		buf = e.Bytes()
	}
}

// BenchmarkFSWriteRead measures the raw filesystem data path.
func BenchmarkFSWriteRead(b *testing.B) {
	f := fs.New()
	ino, err := f.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(ino, 0, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAt(ino, 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNRFlatCombiningContended measures per-op latency with
// parallel callers funnelling through one replica's combiner.
func BenchmarkNRFlatCombiningContended(b *testing.B) {
	n := nr.New(nr.Options{Replicas: 1}, func() nr.DataStructure[uint64, kvBenchOp, uint64] {
		return &kvBench{m: make(map[uint64]uint64)}
	})
	b.RunParallel(func(pb *testing.PB) {
		c := n.MustRegister(0)
		i := uint64(0)
		for pb.Next() {
			c.Execute(kvBenchOp{K: i % 128, V: i})
			i++
		}
	})
}

// kvBenchOp is the mutating op of the contended NR benchmark.
type kvBenchOp struct{ K, V uint64 }

// kvBench is the benchmark payload for the contended NR benchmark.
type kvBench struct{ m map[uint64]uint64 }

// DispatchRead implements nr.DataStructure.
func (d *kvBench) DispatchRead(k uint64) uint64 { return d.m[k] }

// DispatchWrite implements nr.DataStructure.
func (d *kvBench) DispatchWrite(w kvBenchOp) uint64 { d.m[w.K] = w.V; return w.V }

// BenchmarkAblationReadScaling is DESIGN.md ablation 5: NR read
// throughput with readers on one replica vs spread over two.
func BenchmarkAblationReadScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one, two, err := experiments.AblationReadScaling(4, 20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(one, "ops/s-1replica")
		b.ReportMetric(two, "ops/s-2replicas")
	}
}
